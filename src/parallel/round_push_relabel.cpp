#include "parallel/round_push_relabel.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "analysis/check.h"
#if REPFLOW_INVARIANTS_ENABLED
#include "analysis/flow_invariants.h"
#endif

namespace repflow::parallel {

using graph::ArcId;
using graph::Cap;
using graph::Vertex;

namespace {
// Index ranges handed out by the relaxed chunk cursor during parallel
// phases.  Small enough to balance skewed discharge costs, large enough
// that the cursor is not contended.
constexpr std::size_t kChunk = 32;
// Flat work charged per discharge on top of the arc scans (mirrors the
// constant in work-bounded global-relabel triggers a la Goldberg).
constexpr std::uint64_t kDischargeWorkConstant = 4;
}  // namespace

// A pool barrier is two mutex + condition-variable handoffs — far more
// expensive than discharging a few hundred low-degree vertices.  Phases
// below the cutoff therefore run inline on the coordinating thread as
// worker 0; the memory-order argument is unaffected (a sequential phase
// trivially happens-before the next), but every thread buffer must be
// cleared first so the commit does not re-read a previous parallel
// round's activations.
template <typename Job>
void RoundPushRelabel::run_phase(std::size_t total, Job&& job) {
  // mo: relaxed — phase prologue on the coordinator; the pool handoff (or
  // the inline call) publishes the reset cursor to the workers.  This BSP
  // barrier argument covers every relaxed site in the phase bodies below:
  // within a round each cell has a single logical owner, and all
  // cross-round visibility rides the run()/barrier edges.
  cursor_.store(0, std::memory_order_relaxed);
  if (threads_ == 1 || total < parallel_cutoff_) {
    for (auto& buf : thread_bufs_) buf.clear();
    job(0);
  } else {
    pool_.run(job);
  }
}

RoundPushRelabel::RegistryHandles RoundPushRelabel::RegistryHandles::make() {
  auto& reg = obs::Registry::global();
  return RegistryHandles{reg.counter("parallel.pushes"),
                         reg.counter("parallel.relabels"),
                         reg.counter("parallel.discharges"),
                         reg.counter("parallel.resumes"),
                         reg.counter("parallel.rounds"),
                         reg.counter("parallel.global_relabels"),
                         reg.counter("parallel.discharge_work"),
                         reg.gauge("parallel.active_peak")};
}

RoundPushRelabel::RoundPushRelabel(graph::FlowNetwork& net, Vertex source,
                                   Vertex sink, int threads,
                                   graph::RoundRelabelWorkspace* workspace)
    : ParallelEngineBase(net, source, sink, threads),
      ws_(workspace ? *workspace : owned_workspace_),
      registry_(RegistryHandles::make()) {
  counters_.resize(static_cast<std::size_t>(threads));
  thread_bufs_.resize(static_cast<std::size_t>(threads));
  ensure_round_state();
}

void RoundPushRelabel::rebind(Vertex source, Vertex sink) {
  bind(source, sink);
  ensure_round_state();
}

void RoundPushRelabel::ensure_round_state() {
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  ws_.level.resize(n);
  ws_.next_level.resize(n);
  // Activation is stamp-dedup'd, so no round can produce more than one
  // entry per vertex: n + 2 covers every interior vertex plus source and
  // sink as commit candidates, and the buffers never reallocate mid-run.
  ws_.active.reserve(n + 2);
  ws_.frontier.reserve(n);
  ws_.next_frontier.reserve(n);
  for (auto& buf : thread_bufs_) buf.reserve(n + 2);
  ensure_atomic_size(excess_diff_, n);
  ensure_atomic_size(last_activated_, n);
  ensure_atomic_size(bfs_stamp_, n);
}

void RoundPushRelabel::activate(Vertex v, int worker) {
  // mo: relaxed — the stamp is a claim ticket (RMW atomicity dedupes
  // concurrent activators); the claimed vertex id travels in the claiming
  // worker's own buffer, which the barrier publishes.
  if (last_activated_[v].exchange(round_stamp_, std::memory_order_relaxed) !=
      round_stamp_) {
    thread_bufs_[static_cast<std::size_t>(worker)].push_back(v);
  }
}

void RoundPushRelabel::discharge(Vertex u, int worker) {
  ThreadCounters& counters = counters_[static_cast<std::size_t>(worker)];
  ++counters.discharges;
  const auto n = static_cast<std::int32_t>(net_.num_vertices());
  const std::int32_t lu = ws_.level[u];
  const std::int32_t begin = adj_offset_[u];
  const std::int32_t end = adj_offset_[u + 1];
  // Committed excess is owner-read during the round; same-round incoming
  // credits accumulate in excess_diff_ and only join at the barrier.
  // mo: relaxed — see the BSP note in run_phase (single owner per round).
  Cap e = excess_[u].load(std::memory_order_relaxed);
  Cap pushed = 0;
  for (std::int32_t i = begin; i < end && e > 0; ++i) {
    const ArcId a = adj_arcs_[i];
    const Vertex w = arc_head_[a];
    if (ws_.level[w] != lu - 1) continue;  // admissible wrt frozen labels
    // mo: relaxed — admissible arcs point strictly down-level, and only
    // the down-level endpoint's owner pushes on an arc this round, so each
    // flow cell has one writer per round (BSP note in run_phase); the
    // diff cells are pure commutative tallies joined at the barrier.
    const Cap r = cap_[a] - flow_[a].load(std::memory_order_relaxed);
    if (r <= 0) continue;
    const Cap delta = std::min(e, r);
    // mo: relaxed — see the single-writer-per-round note above.
    flow_[a].fetch_add(delta, std::memory_order_relaxed);
    flow_[a ^ 1].fetch_sub(delta, std::memory_order_relaxed);
    excess_diff_[w].fetch_add(delta, std::memory_order_relaxed);
    activate(w, worker);
    e -= delta;
    pushed += delta;
    ++counters.pushes;
  }
  if (pushed > 0) {
    // mo: relaxed — commutative tally joined at the barrier (BSP note).
    excess_diff_[u].fetch_sub(pushed, std::memory_order_relaxed);
  }
  counters.work +=
      static_cast<std::uint64_t>(end - begin) + kDischargeWorkConstant;
  if (e > 0) {
    // Out of admissible arcs: relabel into the buffer (committed at the
    // barrier).  Levels cap at n — stranded excess is returned by
    // drain_stranded_excess() instead of climbing back over the source.
    std::int32_t min_level = std::numeric_limits<std::int32_t>::max();
    for (std::int32_t i = begin; i < end; ++i) {
      const ArcId a = adj_arcs_[i];
      // mo: relaxed — same-round flow reads; a concurrently updated cell
      // only makes the frozen-label relabel conservative (BSP note).
      if (cap_[a] - flow_[a].load(std::memory_order_relaxed) <= 0) continue;
      min_level = std::min(min_level, ws_.level[arc_head_[a]]);
    }
    ws_.next_level[u] =
        min_level >= n ? n : std::min(min_level + 1, n);
    ++counters.relabels;
    counters.work += static_cast<std::uint64_t>(end - begin);
  }
  // Always self-activate: the vertex either relabeled, kept leftover
  // excess, or owes a negative excess_diff_ commit from its pushes.
  activate(u, worker);
}

void RoundPushRelabel::discharge_active() {
  if (++round_stamp_ == 0) {  // epoch wrap: wipe stale stamps once
    // mo: relaxed — coordinator-only, between phases (BSP note).
    for (auto& stamp : last_activated_) {
      stamp.store(0, std::memory_order_relaxed);
    }
    round_stamp_ = 1;
  }
  run_phase(ws_.active.size(), [this](int worker) {
    auto& buf = thread_bufs_[static_cast<std::size_t>(worker)];
    buf.clear();
    const std::size_t total = ws_.active.size();
    for (;;) {
      // mo: relaxed — bare chunk ticket; the claimed range's data was
      // published by the phase handoff (BSP note in run_phase).
      const std::size_t begin =
          cursor_.fetch_add(kChunk, std::memory_order_relaxed);
      if (begin >= total) break;
      const std::size_t end = std::min(begin + kChunk, total);
      for (std::size_t i = begin; i < end; ++i) {
        discharge(ws_.active[i], worker);
      }
    }
  });
}

void RoundPushRelabel::apply_updates() {
  const auto n = static_cast<std::int32_t>(net_.num_vertices());
  ws_.active.clear();
  for (auto& buf : thread_bufs_) {
    for (const Vertex v : buf) {
      // mo: relaxed — barrier commit on the coordinator; every worker
      // tally was published by the phase barrier (BSP note in run_phase).
      excess_[v].fetch_add(excess_diff_[v].exchange(
                               0, std::memory_order_relaxed),
                           std::memory_order_relaxed);
      ws_.level[v] = ws_.next_level[v];
      if (v == source_ || v == sink_) continue;
      // mo: relaxed — see the barrier-commit note above.
      if (excess_[v].load(std::memory_order_relaxed) > 0 &&
          ws_.level[v] < n) {
        ws_.active.push_back(v);
      }
    }
  }
  for (auto& counters : counters_) {
    run_pushes_ += counters.pushes;
    run_relabels_ += counters.relabels;
    run_discharges_ += counters.discharges;
    run_round_stats_.discharge_work += counters.work;
    work_since_gr_ += counters.work;
    counters = ThreadCounters{};
  }
}

void RoundPushRelabel::global_relabel() {
  ++run_round_stats_.global_relabels;
  ++stats_.global_relabels;
  if (++gr_stamp_ == 0) {
    // mo: relaxed — coordinator-only, between phases (BSP note).
    for (auto& stamp : bfs_stamp_) stamp.store(0, std::memory_order_relaxed);
    gr_stamp_ = 1;
  }
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  const auto nn = static_cast<std::int32_t>(n);
  std::fill(ws_.level.begin(),
            ws_.level.begin() + static_cast<std::ptrdiff_t>(n), nn);
  ws_.frontier.clear();
  ws_.level[sink_] = 0;
  // mo: relaxed — coordinator-only seed, published by the phase handoff.
  bfs_stamp_[sink_].store(gr_stamp_, std::memory_order_relaxed);
  ws_.frontier.push_back(sink_);
  std::int32_t depth = 0;
  // Level-synchronous parallel backward BFS from the sink over residual
  // arcs; each depth is one pool barrier, frontier chunks handed out by
  // the relaxed cursor, discovery claimed by the stamp exchange.
  while (!ws_.frontier.empty()) {
    ++depth;
    run_phase(ws_.frontier.size(), [this, depth](int worker) {
      auto& out = thread_bufs_[static_cast<std::size_t>(worker)];
      out.clear();
      const std::size_t total = ws_.frontier.size();
      for (;;) {
        // mo: relaxed — bare chunk ticket (BSP note in run_phase).
        const std::size_t begin =
            cursor_.fetch_add(kChunk, std::memory_order_relaxed);
        if (begin >= total) break;
        const std::size_t end = std::min(begin + kChunk, total);
        for (std::size_t i = begin; i < end; ++i) {
          const Vertex v = ws_.frontier[i];
          for (std::int32_t s = adj_offset_[v]; s < adj_offset_[v + 1];
               ++s) {
            const ArcId a = adj_arcs_[s];
            const Vertex w = arc_head_[a];
            if (w == source_) continue;
            // Residual of the reverse arc (w -> v) admits w one level up.
            // mo: relaxed — flows are frozen during the BFS (no discharge
            // phase runs concurrently; BSP note in run_phase).
            if (cap_[a ^ 1] - flow_[a ^ 1].load(std::memory_order_relaxed) <=
                0) {
              continue;
            }
            // mo: relaxed — discovery ticket: RMW atomicity elects one
            // claimant; the level write is claimant-only and the next
            // depth's barrier publishes it.
            if (bfs_stamp_[w].exchange(gr_stamp_,
                                       std::memory_order_relaxed) ==
                gr_stamp_) {
              continue;
            }
            ws_.level[w] = depth;
            out.push_back(w);
          }
        }
      }
    });
    ws_.next_frontier.clear();
    for (const auto& buf : thread_bufs_) {
      ws_.next_frontier.insert(ws_.next_frontier.end(), buf.begin(),
                               buf.end());
    }
    std::swap(ws_.frontier, ws_.next_frontier);
  }
  ws_.level[source_] = nn;
  std::copy(ws_.level.begin(),
            ws_.level.begin() + static_cast<std::ptrdiff_t>(n),
            ws_.next_level.begin());
  work_since_gr_ = 0;
  check_exact_labels("round_pr.post_global_relabel");
}

void RoundPushRelabel::seed_active() {
  const auto n = static_cast<std::int32_t>(net_.num_vertices());
  ws_.active.clear();
  for (Vertex v = 0; v < net_.num_vertices(); ++v) {
    if (v == source_ || v == sink_) continue;
    // mo: relaxed — coordinator-only scan between phases (BSP note).
    if (excess_[v].load(std::memory_order_relaxed) > 0 && ws_.level[v] < n) {
      ws_.active.push_back(v);
    }
  }
}

void RoundPushRelabel::filter_active() {
  const auto n = static_cast<std::int32_t>(net_.num_vertices());
  std::size_t kept = 0;
  for (const Vertex v : ws_.active) {
    if (ws_.level[v] < n) ws_.active[kept++] = v;
  }
  ws_.active.resize(kept);
}

Cap RoundPushRelabel::resume() {
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  const auto m = static_cast<std::size_t>(net_.num_arcs());
  copy_in();
  // Defensive re-zero of the delta array: every committed round leaves it
  // all-zero, but a rebind may have exposed stale slots.
  // mo: relaxed — single-threaded prologue (copy_in note, engine_base.cpp).
  for (std::size_t v = 0; v < n; ++v) {
    excess_diff_[v].store(0, std::memory_order_relaxed);
  }
  saturate_source_arcs();
  gr_threshold_ = static_cast<std::uint64_t>(n) + m;
  run_round_stats_ = RoundStats{};
  run_pushes_ = run_relabels_ = run_discharges_ = 0;
  global_relabel();
  seed_active();
  for (;;) {
    while (!ws_.active.empty()) {
      run_round_stats_.active_peak = std::max(
          run_round_stats_.active_peak,
          static_cast<std::uint64_t>(ws_.active.size()));
      if (work_since_gr_ > 2 * gr_threshold_) {
        global_relabel();
        filter_active();
        if (ws_.active.empty()) break;
      }
      discharge_active();
      apply_updates();
      ++run_round_stats_.rounds;
      check_round_invariants("round_pr.post_commit");
    }
    // No active vertex below level n is left — but labels may be broken
    // from parallelism, so only an exact relabel plus a rescan can prove
    // termination (WHFC's termination check).
    global_relabel();
    seed_active();
    if (ws_.active.empty()) break;
  }
  drain_stranded_excess();

  stats_.pushes += run_pushes_;
  stats_.relabels += run_relabels_;
  registry_.pushes.add(run_pushes_);
  registry_.relabels.add(run_relabels_);
  registry_.discharges.add(run_discharges_);
  registry_.resumes.add(1);
  registry_.rounds.add(run_round_stats_.rounds);
  registry_.global_relabels.add(run_round_stats_.global_relabels);
  registry_.discharge_work.add(run_round_stats_.discharge_work);
  registry_.active_peak.set(
      static_cast<double>(run_round_stats_.active_peak));
  cumulative_round_stats_.rounds += run_round_stats_.rounds;
  cumulative_round_stats_.global_relabels +=
      run_round_stats_.global_relabels;
  cumulative_round_stats_.discharge_work +=
      run_round_stats_.discharge_work;
  cumulative_round_stats_.active_peak = std::max(
      cumulative_round_stats_.active_peak, run_round_stats_.active_peak);

  copy_out();
  // mo: relaxed — single-threaded epilogue (see the seam note below).
  const Cap value = excess_[sink_].load(std::memory_order_relaxed);
  // Post-solve seam (single-threaded epilogue; every parallel phase ended
  // at a pool barrier, so the relaxed loads in copy_out observed final
  // values): flows copied back to the shared network must be a conserved
  // flow whose sink inflow matches the engine's own excess accounting.
  REPFLOW_CHECK_FLOW(net_, source_, sink_, "round_pr.post_resume");
#if REPFLOW_INVARIANTS_ENABLED
  if (net_.flow_into(sink_) != value) {
    analysis::InvariantReport report;
    report.fail("engine sink excess " + std::to_string(value) +
                " != network sink inflow " +
                std::to_string(net_.flow_into(sink_)));
    analysis::enforce(report, "round_pr.post_resume");
  }
#endif
  return value;
}

void RoundPushRelabel::reset_excess_after_restore(Cap /*sink_excess*/) {
  // Excess is recomputed from the conserved flows at every resume(); there
  // is no cross-run excess state to realign.
}

std::size_t RoundPushRelabel::retained_bytes() const {
  std::size_t total =
      retained_bytes_base() +
      excess_diff_.size() * sizeof(std::atomic<Cap>) +
      (last_activated_.size() + bfs_stamp_.size()) *
          sizeof(std::atomic<std::uint32_t>);
  for (const auto& buf : thread_bufs_) {
    total += buf.capacity() * sizeof(Vertex);
  }
  // External workspaces are counted by their owner (MaxflowWorkspace).
  if (&ws_ == &owned_workspace_) total += ws_.retained_bytes();
  return total;
}

#if REPFLOW_INVARIANTS_ENABLED

// Round-boundary preflow validity on the engine's internal arrays (the
// network itself is only updated at copy_out): arc bounds + antisymmetry,
// non-negative committed excess away from the source, and committed excess
// consistent with the flows (all excess_diff_ deltas were committed).
void RoundPushRelabel::check_round_invariants(const char* where) const {
  analysis::InvariantReport report;
  const auto m = static_cast<ArcId>(net_.num_arcs());
  // mo: relaxed — invariant checks run on the coordinator between phases,
  // after the barrier published every worker write (BSP note).
  for (ArcId a = 0; a < m; a += 2) {
    const Cap f = flow_[a].load(std::memory_order_relaxed);
    const Cap fr = flow_[a ^ 1].load(std::memory_order_relaxed);
    if (fr != -f) {
      report.fail("arc " + std::to_string(a) + ": antisymmetry broken (" +
                  std::to_string(f) + " vs " + std::to_string(fr) + ")");
    }
    if (f > cap_[a] || fr > cap_[a ^ 1]) {
      report.fail("arc " + std::to_string(a) + ": capacity exceeded");
    }
  }
  for (Vertex v = 0; v < net_.num_vertices(); ++v) {
    if (v == source_) continue;
    Cap net_out = 0;
    // mo: relaxed — between-phase invariant check (note above).
    for (std::int32_t i = adj_offset_[v]; i < adj_offset_[v + 1]; ++i) {
      net_out += flow_[adj_arcs_[i]].load(std::memory_order_relaxed);
    }
    const Cap excess = excess_[v].load(std::memory_order_relaxed);
    if (excess < 0) {
      report.fail("vertex " + std::to_string(v) + ": negative excess " +
                  std::to_string(excess));
    }
    if (excess != -net_out) {
      report.fail("vertex " + std::to_string(v) + ": committed excess " +
                  std::to_string(excess) + " != inflow-outflow " +
                  std::to_string(-net_out));
    }
  }
  analysis::enforce(report, where);
}

// Labels straight out of global_relabel() are exact distances, so full
// height-function validity must hold: level(s)=n, level(t)=0, and
// level(u) <= level(w)+1 on every residual arc.
void RoundPushRelabel::check_exact_labels(const char* where) const {
  analysis::InvariantReport report;
  const auto n = static_cast<std::int32_t>(net_.num_vertices());
  if (ws_.level[source_] != n) report.fail("source level != n");
  if (ws_.level[sink_] != 0) report.fail("sink level != 0");
  for (Vertex u = 0; u < net_.num_vertices(); ++u) {
    for (std::int32_t i = adj_offset_[u]; i < adj_offset_[u + 1]; ++i) {
      const ArcId a = adj_arcs_[i];
      // mo: relaxed — between-phase invariant check (note above).
      if (cap_[a] - flow_[a].load(std::memory_order_relaxed) <= 0) continue;
      const Vertex w = arc_head_[a];
      if (ws_.level[u] < n && ws_.level[u] > ws_.level[w] + 1) {
        report.fail("residual arc " + std::to_string(u) + "->" +
                    std::to_string(w) + ": level " +
                    std::to_string(ws_.level[u]) + " > " +
                    std::to_string(ws_.level[w]) + " + 1");
      }
    }
  }
  analysis::enforce(report, where);
}

#else  // !REPFLOW_INVARIANTS_ENABLED

void RoundPushRelabel::check_round_invariants(const char* /*where*/) const {}
void RoundPushRelabel::check_exact_labels(const char* /*where*/) const {}

#endif  // REPFLOW_INVARIANTS_ENABLED

}  // namespace repflow::parallel
