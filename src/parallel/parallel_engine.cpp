#include "parallel/parallel_engine.h"

#include <stdexcept>

namespace repflow::parallel {

core::EngineFactory parallel_engine_factory(int threads) {
  return parallel_engine_factory(threads, core::EngineKind::kHongHe);
}

core::EngineFactory parallel_engine_factory(int threads,
                                            core::EngineKind kind) {
  if (threads < 1) {
    throw std::invalid_argument("parallel_engine_factory: threads < 1");
  }
  switch (kind) {
    case core::EngineKind::kHongHe:
      return [threads](graph::FlowNetwork& net, graph::Vertex source,
                       graph::Vertex sink)
                 -> std::unique_ptr<core::IntegratedEngine> {
        return std::make_unique<ParallelEngine>(net, source, sink, threads);
      };
    case core::EngineKind::kRound:
      return [threads](graph::FlowNetwork& net, graph::Vertex source,
                       graph::Vertex sink)
                 -> std::unique_ptr<core::IntegratedEngine> {
        return std::make_unique<RoundEngine>(net, source, sink, threads);
      };
    case core::EngineKind::kAuto:
      break;
  }
  throw std::invalid_argument(
      "parallel_engine_factory: kAuto must be resolved to a concrete "
      "engine before building a factory");
}

}  // namespace repflow::parallel
