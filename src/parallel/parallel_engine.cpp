#include "parallel/parallel_engine.h"

#include <stdexcept>

namespace repflow::parallel {

core::EngineFactory parallel_engine_factory(int threads) {
  if (threads < 1) {
    throw std::invalid_argument("parallel_engine_factory: threads < 1");
  }
  return [threads](graph::FlowNetwork& net, graph::Vertex source,
                   graph::Vertex sink)
             -> std::unique_ptr<core::IntegratedEngine> {
    return std::make_unique<ParallelEngine>(net, source, sink, threads);
  };
}

}  // namespace repflow::parallel
