// Persistent worker pool shared by the parallel max-flow engines.
//
// Extracted from ParallelPushRelabel so the Hong & He engine and the
// round-based engine reuse one spawn-once / run-many protocol: `threads`
// OS threads are created at construction and parked on a condition
// variable; run(job) publishes the job, wakes every worker, and blocks the
// caller until all of them finished.  Algorithm 6 resumes an engine many
// times per query, so the threads must survive across runs — thread
// creation per resume() would dominate small-query latency.
//
// Synchronization contract: the mutex + condition-variable handoff around
// each run() provides the happens-before edges into and out of a parallel
// phase.  Everything a worker wrote before finishing is visible to the
// caller when run() returns, and everything the caller wrote before run()
// is visible to every worker — engines exploit this to keep their
// single-threaded prologue/epilogue (and the round engine its barrier
// commits) free of per-cell synchronization.
//
// Lock discipline (compile-time checked; see support/thread_annotations.h
// and docs/ANALYSIS.md): mutex_ guards the whole handoff state — job_,
// generation_, running_, shutdown_.  Clang's -Wthread-safety rejects any
// access outside a MutexLock scope.
//
// threads == 1 never spawns: run(job) invokes job(0) inline on the caller,
// so single-threaded engines stay deterministic and signal-safe.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "support/thread_annotations.h"

namespace repflow::parallel {

class WorkerPool {
 public:
  explicit WorkerPool(int threads) : threads_(threads) {
    if (threads_ > 1) {
      workers_.reserve(static_cast<std::size_t>(threads_));
      for (int t = 0; t < threads_; ++t) {
        workers_.emplace_back([this, t] { entry(t); });
      }
    }
  }

  ~WorkerPool() {
    {
      support::MutexLock lock(mutex_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Run `job(worker_index)` on every worker (indices 0..threads-1) and
  /// block until all of them return.  Not reentrant; one run at a time.
  void run(const std::function<void(int)>& job) REPFLOW_EXCLUDES(mutex_) {
    if (threads_ == 1) {
      job(0);
      return;
    }
    {
      support::MutexLock lock(mutex_);
      job_ = &job;
      running_ = threads_;
      ++generation_;
    }
    cv_.notify_all();
    {
      support::MutexLock lock(mutex_);
      while (running_ != 0) cv_.wait(mutex_);
      job_ = nullptr;
    }
  }

  int threads() const { return threads_; }

 private:
  void entry(int index) REPFLOW_EXCLUDES(mutex_) {
    std::uint64_t seen_generation = 0;
    for (;;) {
      const std::function<void(int)>* job = nullptr;
      {
        support::MutexLock lock(mutex_);
        while (!shutdown_ && generation_ == seen_generation) cv_.wait(mutex_);
        if (shutdown_) return;
        seen_generation = generation_;
        job = job_;
      }
      (*job)(index);
      {
        support::MutexLock lock(mutex_);
        if (--running_ == 0) cv_.notify_all();
      }
    }
  }

  int threads_;
  std::vector<std::thread> workers_;
  support::Mutex mutex_;
  support::CondVar cv_;
  const std::function<void(int)>* job_ REPFLOW_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t generation_ REPFLOW_GUARDED_BY(mutex_) = 0;
  int running_ REPFLOW_GUARDED_BY(mutex_) = 0;
  bool shutdown_ REPFLOW_GUARDED_BY(mutex_) = false;
};

}  // namespace repflow::parallel
