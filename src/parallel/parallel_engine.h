// Adapter exposing ParallelPushRelabel through the IntegratedEngine
// interface, so Algorithm 6's driver runs unchanged with the multithreaded
// engine (the paper's Section V modifies only line 29).
#pragma once

#include <memory>

#include "core/engine.h"
#include "core/push_relabel_binary.h"
#include "parallel/parallel_push_relabel.h"

namespace repflow::parallel {

class ParallelEngine final : public core::IntegratedEngine {
 public:
  ParallelEngine(graph::FlowNetwork& net, graph::Vertex source,
                 graph::Vertex sink, int threads)
      : solver_(net, source, sink, threads) {}

  graph::Cap resume() override { return solver_.resume(); }
  void reset_excess_after_restore(graph::Cap sink_excess) override {
    solver_.reset_excess_after_restore(sink_excess);
  }
  void rebind(graph::Vertex source, graph::Vertex sink) override {
    solver_.rebind(source, sink);
  }
  const graph::FlowStats& stats() const override { return solver_.stats(); }
  std::size_t retained_bytes() const override {
    return solver_.retained_bytes();
  }

 private:
  ParallelPushRelabel solver_;
};

/// Engine factory for PushRelabelBinarySolver running `threads` workers.
core::EngineFactory parallel_engine_factory(int threads);

}  // namespace repflow::parallel
