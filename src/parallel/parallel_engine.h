// Adapters exposing the multithreaded engines through the IntegratedEngine
// interface, so Algorithm 6's driver runs unchanged with either parallel
// engine (the paper's Section V modifies only line 29).
//
// Two engines sit behind the same seam (core::EngineKind):
//   * kHongHe — asynchronous lock-free push-relabel (ParallelPushRelabel)
//   * kRound  — bulk-synchronous round-based push-relabel (RoundPushRelabel)
#pragma once

#include <memory>

#include "core/engine.h"
#include "core/push_relabel_binary.h"
#include "parallel/parallel_push_relabel.h"
#include "parallel/round_push_relabel.h"

namespace repflow::parallel {

/// Wraps a concrete parallel solver (ParallelPushRelabel or
/// RoundPushRelabel) as an IntegratedEngine.  The solver must expose
/// resume / reset_excess_after_restore / rebind / stats / retained_bytes.
template <typename Solver>
class ParallelEngineAdapter final : public core::IntegratedEngine {
 public:
  ParallelEngineAdapter(graph::FlowNetwork& net, graph::Vertex source,
                        graph::Vertex sink, int threads)
      : solver_(net, source, sink, threads) {}

  graph::Cap resume() override { return solver_.resume(); }
  void reset_excess_after_restore(graph::Cap sink_excess) override {
    solver_.reset_excess_after_restore(sink_excess);
  }
  void rebind(graph::Vertex source, graph::Vertex sink) override {
    solver_.rebind(source, sink);
  }
  const graph::FlowStats& stats() const override { return solver_.stats(); }
  std::size_t retained_bytes() const override {
    return solver_.retained_bytes();
  }

  Solver& solver() { return solver_; }

 private:
  Solver solver_;
};

using ParallelEngine = ParallelEngineAdapter<ParallelPushRelabel>;
using RoundEngine = ParallelEngineAdapter<RoundPushRelabel>;

/// Engine factory for PushRelabelBinarySolver running `threads` workers of
/// the Hong & He asynchronous engine (historic default).
core::EngineFactory parallel_engine_factory(int threads);

/// Engine factory for a specific engine kind.  `kind` must be a concrete
/// engine (kHongHe or kRound) — resolving kAuto against observed latency
/// histograms is the solver pool's job, before this factory is called.
core::EngineFactory parallel_engine_factory(int threads,
                                            core::EngineKind kind);

}  // namespace repflow::parallel
