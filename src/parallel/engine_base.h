// Shared substrate of the multithreaded max-flow engines.
//
// Both parallel engines — the asynchronous Hong & He lock-free engine and
// the bulk-synchronous round engine — need the same foundation: a CSR
// capture of the FlowNetwork topology, atomic per-arc flow and per-vertex
// excess arrays, a persistent worker pool, the integrated-resume prologue
// (copy flows in, saturate residual source arcs) and epilogue (drain
// stranded excess back to the source, copy flows out), and FlowStats
// accounting.  ParallelEngineBase owns all of it once; the derived engines
// add only their scheduling discipline (async vertex queue vs. synchronous
// rounds) and their label state.
//
// All arrays are grow-only: std::atomic is neither copyable nor movable, so
// a vector of atomics cannot resize in place — bind() replaces them only
// when the network outgrows the retained capacity, and every loop bounds
// itself by the live network sizes, not the array sizes.  Rebinding to a
// same-footprint problem therefore performs zero heap allocations and the
// worker pool persists across queries.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/maxflow.h"
#include "parallel/worker_pool.h"

namespace repflow::parallel {

/// Grow-only replacement for a vector of atomics (not resizable in place);
/// fresh slots are value-initialized to zero, and callers re-initialize the
/// live prefix on every run anyway.
template <typename T>
void ensure_atomic_size(std::vector<std::atomic<T>>& v, std::size_t n) {
  if (v.size() < n) v = std::vector<std::atomic<T>>(n);
}

class ParallelEngineBase {
 public:
  ParallelEngineBase(const ParallelEngineBase&) = delete;
  ParallelEngineBase& operator=(const ParallelEngineBase&) = delete;

  const graph::FlowStats& stats() const { return stats_; }
  int threads() const { return threads_; }

 protected:
  ParallelEngineBase(graph::FlowNetwork& net, graph::Vertex source,
                     graph::Vertex sink, int threads);
  /// Folds the engine's cumulative FlowStats into the obs registry.
  ~ParallelEngineBase();

  /// Validate the endpoints and recapture the network topology in place
  /// (CSR arrays + capacities + atomic flow/excess arrays).
  void bind(graph::Vertex source, graph::Vertex sink);

  /// Load capacities, flows, and the implied excess (inflow minus outflow)
  /// from the network.  Single-threaded prologue; relaxed stores.
  void copy_in();

  /// Write the engine's flows back onto the network, pairwise.
  void copy_out();

  /// Saturate every residual source arc, crediting the heads' excess
  /// (Algorithm 5 lines 4-10).  Single-threaded prologue.
  void saturate_source_arcs();

  /// Sequential backward BFS heights into `h` (size >= num_vertices):
  /// distance-to-sink from the sink; unreached vertices get n.  When
  /// `source_side` is set, a second BFS from the source at base n assigns
  /// source-side heights (unreached then 2n) — the Hong & He engine climbs
  /// excess back toward the source through those levels, while the round
  /// engine strands it at n and lets drain_stranded_excess() return it.
  /// In both cases h[source] = n on return.  Must run quiesced.
  void reverse_bfs_heights(std::vector<std::int32_t>& h, bool source_side);

  /// Single-threaded epilogue (workers quiesced): return the excess of
  /// stranded vertices to the source by walking positive-flow arcs
  /// backward, canceling flow cycles encountered on the way.  Equivalent
  /// to phase two of the classic push-relabel algorithm, but without any
  /// relabeling.
  void drain_stranded_excess();

  /// Retained footprint of the substrate-owned buffers (derived engines
  /// add their own label/scheduling state on top).
  std::size_t retained_bytes_base() const;

  graph::FlowNetwork& net_;
  graph::Vertex source_;
  graph::Vertex sink_;
  int threads_;
  graph::FlowStats stats_;

  // Flattened topology (CSR) captured at construction / bind().
  std::vector<std::int32_t> adj_offset_;
  std::vector<graph::ArcId> adj_arcs_;
  std::vector<graph::Vertex> arc_head_;

  // Shared mutable state (see header comment for the grow-only contract).
  std::vector<graph::Cap> cap_;
  std::vector<std::atomic<graph::Cap>> flow_;
  std::vector<std::atomic<graph::Cap>> excess_;

  // Single-threaded scratch for reverse_bfs_heights / drain, kept across
  // runs so the steady-state path allocates nothing.
  std::vector<std::int32_t> bfs_height_;
  std::vector<graph::Vertex> bfs_queue_;
  std::vector<std::int32_t> drain_visit_pos_;
  std::vector<graph::ArcId> drain_walk_;

  // Persistent worker pool (spawns only when threads_ > 1).
  WorkerPool pool_;
};

}  // namespace repflow::parallel
