// Asynchronous lock-free multithreaded push-relabel (paper Section V,
// following Hong & He, IEEE TPDS 22(6), 2011).
//
// Worker threads drain a lock-free queue of active vertices.  A thread
// holding vertex u finds u's lowest-height residual neighbor v̄; if
// height(u) > height(v̄) it pushes min(excess(u), residual(u, v̄)) with
// atomic fetch-add/sub on the arc flow and both excesses, otherwise it
// relabels u to height(v̄) + 1 (heights are written only by the owning
// thread).  No locks or barriers anywhere — only atomic RMW, per [31].
//
// Safety of the stale reads: a vertex is owned by at most one thread at a
// time (enqueue-flag protocol), so only the owner decreases excess(u) and
// residual(u, v); concurrent threads can only *increase* them, which keeps
// every computed delta valid.
//
// The engine mirrors the integrated interface of the sequential
// PushRelabel: resume() conserves the flows already on the FlowNetwork,
// saturates residual source arcs, recomputes exact heights, and runs the
// multithreaded loop; flows are copied back on completion.
//
// The CSR capture, atomic flow/excess arrays, worker pool, and the
// prologue/epilogue shared with the round engine live in
// ParallelEngineBase (engine_base.h); this class adds the asynchronous
// scheduling state: the MPMC active queue, atomic heights, and the
// cooperative global-relabel park protocol.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "parallel/engine_base.h"
#include "parallel/mpmc_queue.h"

namespace repflow::parallel {

class ParallelPushRelabel : public ParallelEngineBase {
 public:
  /// Per-worker operation counters (each slot written by one thread only).
  /// `queue_yields` counts scheduler yields while the work queue was empty
  /// but other threads still held active vertices — the engine's contention
  /// signal.
  struct ThreadCounters {
    std::uint64_t pushes = 0;
    std::uint64_t relabels = 0;
    std::uint64_t discharges = 0;
    std::uint64_t queue_yields = 0;
  };

  ParallelPushRelabel(graph::FlowNetwork& net, graph::Vertex source,
                      graph::Vertex sink, int threads);

  ParallelPushRelabel(const ParallelPushRelabel&) = delete;
  ParallelPushRelabel& operator=(const ParallelPushRelabel&) = delete;

  /// Re-validate the endpoints and recapture the network topology in
  /// place.  Shared state (atomic arrays, queue) is reallocated only when
  /// the network outgrows the retained capacity, so rebinding to a
  /// same-footprint problem performs zero heap allocations and the worker
  /// pool persists across queries.
  void rebind(graph::Vertex source, graph::Vertex sink);

  /// Retained working-memory footprint across all reusable buffers.
  std::size_t retained_bytes() const;

  /// Integrated run from the network's current flows; returns the flow
  /// value reached (the sink's excess).  Worker threads persist across
  /// calls (Algorithm 6 resumes many times per query); the worker pool's
  /// condition-variable handoff is the only locking, and it sits outside
  /// the push/relabel operations as [31] requires.
  graph::Cap resume();

  void reset_excess_after_restore(graph::Cap sink_excess);

  /// Cumulative per-thread counters over every resume() so far (index =
  /// worker thread; single-threaded runs use slot 0).
  const std::vector<ThreadCounters>& per_thread_counters() const {
    return cumulative_;
  }

 private:
  void exact_heights();
  void seed_queue();
  void worker();
  void discharge(graph::Vertex v);
  void enqueue(graph::Vertex v);

  /// Cooperative global relabeling (the role of [31]'s nonblocking global
  /// relabel thread): when the relabel budget is exhausted, one worker
  /// CAS-elects itself coordinator, the others park at safe checkpoints
  /// (loop boundaries — never mid-push), and the coordinator recomputes
  /// exact heights.  Pure atomics; returns true if this thread paused or
  /// coordinated (caller should restart its loop iteration).
  bool maybe_global_relabel();

  // Asynchronous scheduling state on top of the shared substrate.  The
  // atomic arrays follow the base's grow-only contract.
  std::vector<std::atomic<std::int32_t>> height_;
  std::vector<std::atomic<bool>> queued_;
  std::unique_ptr<MpmcQueue<graph::Vertex>> queue_;
  std::size_t queue_capacity_ = 0;
  std::atomic<std::int64_t> active_count_{0};

  // Global-relabel coordination (atomics only; no locks on the hot path).
  std::atomic<int> gr_state_{0};   // 0 = normal, 1 = pause requested
  std::atomic<int> gr_paused_{0};
  std::atomic<int> gr_exited_{0};  // workers that finished this run
  std::atomic<std::uint64_t> relabels_since_gr_{0};
  std::uint64_t gr_threshold_ = 0;

  // Per-run operation counters folded into stats_, cumulative_, and the
  // obs registry after each run.
  std::vector<ThreadCounters> counters_;
  std::vector<ThreadCounters> cumulative_;

  // Registry handles resolved once at construction (lookup is mutex-guarded;
  // the fold in resume() must not be).
  struct RegistryHandles {
    static RegistryHandles make(int threads);
    obs::Counter& pushes;
    obs::Counter& relabels;
    obs::Counter& discharges;
    obs::Counter& queue_yields;
    obs::Counter& resumes;
    obs::Gauge& contention;
    std::vector<obs::Counter*> thread_pushes;
    std::vector<obs::Counter*> thread_relabels;
    std::vector<obs::Counter*> thread_discharges;
    std::vector<obs::Counter*> thread_queue_yields;
  };
  RegistryHandles registry_;
};

}  // namespace repflow::parallel
