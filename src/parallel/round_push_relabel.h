// Bulk-synchronous round-based parallel push-relabel (WHFC-style).
//
// Where the Hong & He engine is fully asynchronous (workers race over a
// lock-free queue of active vertices), this engine advances in barrier-
// separated rounds over an explicit active set:
//
//   while (!active.empty()) {
//     if (work_since_last_global_relabel > 2 * threshold) global_relabel();
//     discharge_active();   // parallel: push on admissible arcs wrt the
//                           // round's frozen labels, relabel into
//                           // next_level, buffer activations per thread
//     apply_updates();      // barrier: commit label/excess deltas, build
//                           // the next round's active set
//   }
//   global_relabel();       // termination check: labels may be broken by
//                           // parallelism, so only an exact relabel can
//                           // prove no active vertex remains
//   (repeat the outer loop if the rescan re-activates anything)
//
// Within a round every vertex's label is frozen: pushes go only along arcs
// admissible under the frozen labels (level(u) == level(v) + 1), relabels
// are written to a separate next_level buffer, and receiver excess is
// accumulated in an excess_diff side array.  The barrier then commits both
// buffers.  Labels can still end up invalid *across* rounds (u and a
// neighbor may both relabel in the same round), which is why termination
// requires the final exact relabel — the same structure as WHFC's
// ParallelPushRelabel (SNIPPETS.md 1-3).
//
// Memory-order audit (verified under ThreadSanitizer by
// tests/parallel_test.cpp round-engine stress tests):
//
//   * Every cross-phase edge is carried by the WorkerPool barrier: the
//     mutex + condition-variable handoff around pool_.run() sequences
//     [prologue | discharge round | commit | BFS depth | epilogue] so each
//     phase observes everything the previous phase wrote.  No acquire/
//     release pair inside the engine is load-bearing across phases.
//     Phases smaller than the parallel cutoff skip the pool and run inline
//     on the coordinator (a barrier costs more than a few hundred
//     discharges); a sequential phase trivially preserves the same
//     happens-before structure.
//
//   * Within a discharge round, relaxed RMWs suffice because every shared
//     cell is either single-writer or accumulate-only:
//       - flow_[a]: only the discharger of tail(a) pushes on a (a vertex is
//         active at most once per round), so the owner's stale read of
//         flow_[a] can only over-estimate it — concurrent activity is
//         reverse pushes on a^1, which *decrease* flow_[a] — and the
//         computed residual budget is never overshot.  Admissibility
//         (level(u) == level(v) + 1) makes mutual u<->v pushes impossible,
//         so no delta is ever applied twice.
//       - excess_diff_[v]: accumulate-only fetch_add; the committed
//         excess_[v] is read and written only at the barrier.
//       - next_level_[u]: plain (non-atomic) array; written only by u's
//         discharger, read only after the barrier.
//       - last_activated_[v] / bfs_stamp_[v]: atomic exchange used purely
//         as a claim token (exactly one thread observes the stale stamp),
//         so each vertex enters the activation buffers / BFS frontier once.
//       - chunk cursors are relaxed fetch_adds handing out disjoint index
//         ranges; ordering between chunks is irrelevant.
//
//   * The commit in apply_updates() and the global-relabel level writes run
//     on the coordinating thread between pool_.run() calls, i.e. fully
//     quiesced — they use plain loads/stores on the level arrays and
//     relaxed exchange(0) on excess_diff_.
//
// The engine mirrors the integrated interface of the sequential
// PushRelabel: resume() conserves the flows already on the FlowNetwork,
// saturates residual source arcs, recomputes exact labels, and runs the
// round loop; stranded excess is drained back to the source and flows are
// copied out on completion.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/workspace.h"
#include "obs/metrics.h"
#include "parallel/engine_base.h"

namespace repflow::parallel {

class RoundPushRelabel : public ParallelEngineBase {
 public:
  /// Per-run telemetry folded into the obs registry after every resume().
  struct RoundStats {
    std::uint64_t rounds = 0;           ///< discharge/commit barriers run
    std::uint64_t global_relabels = 0;  ///< exact-label recomputations
    std::uint64_t discharge_work = 0;   ///< arc scans + per-discharge const
    std::uint64_t active_peak = 0;      ///< largest per-round active set
  };

  /// `workspace` may point at shared scratch (e.g. MaxflowWorkspace::round);
  /// nullptr uses an engine-owned instance.  Either way the buffers are
  /// grow-only and rebinding a same-footprint problem allocates nothing.
  RoundPushRelabel(graph::FlowNetwork& net, graph::Vertex source,
                   graph::Vertex sink, int threads,
                   graph::RoundRelabelWorkspace* workspace = nullptr);

  RoundPushRelabel(const RoundPushRelabel&) = delete;
  RoundPushRelabel& operator=(const RoundPushRelabel&) = delete;

  /// Re-validate the endpoints and recapture the network topology in place
  /// (zero allocations on same-footprint problems; the worker pool
  /// persists across queries).
  void rebind(graph::Vertex source, graph::Vertex sink);

  /// Integrated run from the network's current flows; returns the flow
  /// value reached (the sink's excess).
  graph::Cap resume();

  void reset_excess_after_restore(graph::Cap sink_excess);

  /// Phases with fewer items than this run inline on the coordinating
  /// thread instead of crossing the worker-pool barrier (two condition-
  /// variable handoffs cost more than discharging a few hundred vertices).
  /// Tests set 0 to force every phase through the pool.
  void set_parallel_cutoff(std::size_t cutoff) { parallel_cutoff_ = cutoff; }

  /// Cumulative round telemetry over every resume() so far.
  const RoundStats& round_stats() const { return cumulative_round_stats_; }

  /// Retained working-memory footprint across all reusable buffers.
  std::size_t retained_bytes() const;

 private:
  struct ThreadCounters {
    std::uint64_t pushes = 0;
    std::uint64_t relabels = 0;
    std::uint64_t discharges = 0;
    std::uint64_t work = 0;
  };

  void ensure_round_state();
  /// Run one parallel phase: hand chunk ranges of `total` items to `job`
  /// via the relaxed cursor.  Below the cutoff the job runs inline as
  /// worker 0 (with every thread buffer cleared, preserving the
  /// commit-reads-all-buffers contract); at or above it, on the pool.
  template <typename Job>
  void run_phase(std::size_t total, Job&& job);
  void seed_active();
  void discharge_active();
  void discharge(graph::Vertex u, int worker);
  void apply_updates();
  void global_relabel();
  void filter_active();
  /// Stamp-dedup'd activation into `worker`'s buffer (at most one entry per
  /// vertex per round; source/sink enter as commit candidates only).
  void activate(graph::Vertex v, int worker);
  void check_round_invariants(const char* where) const;
  void check_exact_labels(const char* where) const;

  graph::RoundRelabelWorkspace owned_workspace_;
  graph::RoundRelabelWorkspace& ws_;

  // Concurrently-written side arrays (see the memory-order audit above).
  std::vector<std::atomic<graph::Cap>> excess_diff_;
  std::vector<std::atomic<std::uint32_t>> last_activated_;
  std::vector<std::atomic<std::uint32_t>> bfs_stamp_;
  std::atomic<std::size_t> cursor_{0};

  // Per-thread activation / BFS-frontier buffers (each written by one
  // worker during a parallel phase, read by the coordinator at the
  // barrier).
  std::vector<std::vector<graph::Vertex>> thread_bufs_;
  std::vector<ThreadCounters> counters_;

  std::size_t parallel_cutoff_ = 2048;  // see set_parallel_cutoff
  std::uint32_t round_stamp_ = 0;  // epoch for last_activated_
  std::uint32_t gr_stamp_ = 0;     // epoch for bfs_stamp_
  std::uint64_t work_since_gr_ = 0;
  std::uint64_t gr_threshold_ = 0;

  RoundStats run_round_stats_;
  RoundStats cumulative_round_stats_;
  std::uint64_t run_pushes_ = 0;
  std::uint64_t run_relabels_ = 0;
  std::uint64_t run_discharges_ = 0;

  // Registry handles resolved once at construction (lookup is
  // mutex-guarded; the fold in resume() must not be).
  struct RegistryHandles {
    static RegistryHandles make();
    obs::Counter& pushes;
    obs::Counter& relabels;
    obs::Counter& discharges;
    obs::Counter& resumes;
    obs::Counter& rounds;
    obs::Counter& global_relabels;
    obs::Counter& discharge_work;
    obs::Gauge& active_peak;
  };
  RegistryHandles registry_;
};

}  // namespace repflow::parallel
