#include "parallel/engine_base.h"

#include <algorithm>
#include <stdexcept>

namespace repflow::parallel {

using graph::ArcId;
using graph::Cap;
using graph::Vertex;

ParallelEngineBase::ParallelEngineBase(graph::FlowNetwork& net, Vertex source,
                                       Vertex sink, int threads)
    : net_(net),
      source_(source),
      sink_(sink),
      threads_(threads),
      pool_(threads) {
  if (threads < 1) {
    throw std::invalid_argument("ParallelEngineBase: threads < 1");
  }
  bind(source, sink);
}

ParallelEngineBase::~ParallelEngineBase() {
  graph::publish_flow_stats(stats_);
}

void ParallelEngineBase::bind(Vertex source, Vertex sink) {
  if (source < 0 || source >= net_.num_vertices() || sink < 0 ||
      sink >= net_.num_vertices() || source == sink) {
    throw std::invalid_argument("ParallelEngineBase: bad source/sink");
  }
  source_ = source;
  sink_ = sink;
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  const auto m = static_cast<std::size_t>(net_.num_arcs());
  adj_offset_.resize(n + 1);
  adj_arcs_.clear();
  adj_arcs_.reserve(m);
  for (std::size_t v = 0; v < n; ++v) {
    adj_offset_[v] = static_cast<std::int32_t>(adj_arcs_.size());
    for (ArcId a : net_.out_arcs(static_cast<Vertex>(v))) {
      adj_arcs_.push_back(a);
    }
  }
  adj_offset_[n] = static_cast<std::int32_t>(adj_arcs_.size());
  arc_head_.resize(m);
  for (ArcId a = 0; a < static_cast<ArcId>(m); ++a) {
    arc_head_[a] = net_.head(a);
  }
  cap_.resize(m);
  ensure_atomic_size(flow_, m);
  ensure_atomic_size(excess_, n);
  bfs_height_.resize(n);
  bfs_queue_.reserve(n);
  drain_visit_pos_.resize(n);
  drain_walk_.reserve(n);
}

void ParallelEngineBase::copy_in() {
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  const auto m = static_cast<std::size_t>(net_.num_arcs());
  // mo: relaxed — single-threaded prologue; the WorkerPool run() handoff
  // publishes every store here to the workers (worker_pool.h contract).
  for (std::size_t a = 0; a < m; ++a) {
    cap_[a] = net_.capacity(static_cast<ArcId>(a));
    flow_[a].store(net_.flow(static_cast<ArcId>(a)),
                   std::memory_order_relaxed);
  }
  // Excess is implied by the conserved flows: inflow minus outflow.
  // mo: relaxed — same prologue contract as the flow stores above.
  for (std::size_t v = 0; v < n; ++v) {
    excess_[v].store(-net_.net_out_flow(static_cast<Vertex>(v)),
                     std::memory_order_relaxed);
  }
  excess_[source_].store(0, std::memory_order_relaxed);
}

void ParallelEngineBase::copy_out() {
  // mo: relaxed — single-threaded epilogue; run() returning gave this
  // thread a happens-after edge from every worker write.
  for (ArcId a = 0; a < net_.num_arcs(); a += 2) {
    net_.set_pair_flow(a, flow_[a].load(std::memory_order_relaxed));
  }
}

void ParallelEngineBase::saturate_source_arcs() {
  // mo: relaxed — single-threaded prologue phase (see copy_in note).
  for (std::int32_t i = adj_offset_[source_]; i < adj_offset_[source_ + 1];
       ++i) {
    const ArcId a = adj_arcs_[i];
    const Cap delta = cap_[a] - flow_[a].load(std::memory_order_relaxed);
    if (delta <= 0) continue;
    // mo: relaxed — single-threaded prologue phase (see copy_in note).
    flow_[a].fetch_add(delta, std::memory_order_relaxed);
    flow_[a ^ 1].fetch_sub(delta, std::memory_order_relaxed);
    excess_[arc_head_[a]].fetch_add(delta, std::memory_order_relaxed);
  }
}

void ParallelEngineBase::reverse_bfs_heights(std::vector<std::int32_t>& h,
                                             bool source_side) {
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  constexpr std::int32_t kUnset = -1;
  std::fill(h.begin(), h.begin() + static_cast<std::ptrdiff_t>(n), kUnset);
  std::vector<Vertex>& queue = bfs_queue_;
  // mo: relaxed — global relabel runs between parallel phases (workers
  // parked), so the pool handoff already ordered every flow write.
  auto residual = [&](ArcId a) {
    return cap_[a] - flow_[a].load(std::memory_order_relaxed);
  };
  auto backward_bfs = [&](Vertex root, std::int32_t base) {
    h[root] = base;
    queue.clear();
    queue.push_back(root);
    std::size_t qi = 0;
    while (qi < queue.size()) {
      const Vertex v = queue[qi++];
      for (std::int32_t i = adj_offset_[v]; i < adj_offset_[v + 1]; ++i) {
        const ArcId a = adj_arcs_[i];
        const Vertex w = arc_head_[a];
        if (h[w] != kUnset || residual(a ^ 1) <= 0) continue;
        h[w] = h[v] + 1;
        queue.push_back(w);
      }
    }
  };
  backward_bfs(sink_, 0);
  const auto hs = static_cast<std::int32_t>(n);
  if (source_side) {
    if (h[source_] == kUnset) h[source_] = hs;
    backward_bfs(source_, hs);
    for (std::size_t v = 0; v < n; ++v) {
      if (h[v] == kUnset) h[v] = static_cast<std::int32_t>(2 * n);
    }
  } else {
    for (std::size_t v = 0; v < n; ++v) {
      if (h[v] == kUnset) h[v] = hs;
    }
  }
  h[source_] = hs;
}

void ParallelEngineBase::drain_stranded_excess() {
  // mo: relaxed throughout — single-threaded epilogue after the last
  // parallel phase; the pool handoff ordered all worker writes, and the
  // per-site tags below inherit this note.
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  std::vector<std::int32_t>& visit_pos = drain_visit_pos_;
  std::fill(visit_pos.begin(),
            visit_pos.begin() + static_cast<std::ptrdiff_t>(n), -1);
  // Finds the in-arc (u -> cur) carrying flow: stored as reverse slot b^1
  // of cur's out-slot b.
  auto inflow_arc = [&](Vertex cur) -> ArcId {
    // mo: relaxed — see the epilogue note at the top of this function.
    for (std::int32_t i = adj_offset_[cur]; i < adj_offset_[cur + 1]; ++i) {
      const ArcId b = adj_arcs_[i];
      if (flow_[b ^ 1].load(std::memory_order_relaxed) > 0) return b ^ 1;
    }
    return graph::kInvalidArc;
  };
  for (Vertex v = 0; v < net_.num_vertices(); ++v) {
    if (v == source_ || v == sink_) continue;
    // mo: relaxed — see the epilogue note at the top of this function.
    while (excess_[v].load(std::memory_order_relaxed) > 0) {
      // Walk backward from v; walk[i] is the flow-carrying arc entering the
      // vertex at depth i.
      std::vector<ArcId>& walk = drain_walk_;
      walk.clear();
      std::fill(visit_pos.begin(), visit_pos.end(), -1);
      visit_pos[v] = 0;
      Vertex cur = v;
      bool reached_source = false;
      while (!reached_source) {
        const ArcId in = inflow_arc(cur);
        if (in == graph::kInvalidArc) {
          // Impossible for a vertex with surplus inflow; guard anyway.
          // mo: relaxed — epilogue note at the top of this function.
          excess_[v].store(0, std::memory_order_relaxed);
          break;
        }
        const Vertex prev = arc_head_[in ^ 1];  // tail of (prev -> cur)
        if (prev == source_) {
          walk.push_back(in);
          reached_source = true;
          break;
        }
        if (visit_pos[prev] >= 0) {
          // Cancel the flow cycle prev -> ... -> cur -> prev.
          // mo: relaxed — epilogue note at the top of this function.
          Cap cycle_min = flow_[in].load(std::memory_order_relaxed);
          for (std::size_t k = static_cast<std::size_t>(visit_pos[prev]);
               k < walk.size(); ++k) {
            cycle_min = std::min(
                cycle_min, flow_[walk[k]].load(std::memory_order_relaxed));
          }
          // mo: relaxed — epilogue note at the top of this function.
          flow_[in].fetch_sub(cycle_min, std::memory_order_relaxed);
          flow_[in ^ 1].fetch_add(cycle_min, std::memory_order_relaxed);
          for (std::size_t k = static_cast<std::size_t>(visit_pos[prev]);
               k < walk.size(); ++k) {
            // mo: relaxed — epilogue note at the top of this function.
            flow_[walk[k]].fetch_sub(cycle_min, std::memory_order_relaxed);
            flow_[walk[k] ^ 1].fetch_add(cycle_min,
                                         std::memory_order_relaxed);
          }
          // Rewind the walk to prev, unmarking the tails of popped arcs.
          while (walk.size() > static_cast<std::size_t>(visit_pos[prev])) {
            visit_pos[arc_head_[walk.back() ^ 1]] = -1;
            walk.pop_back();
          }
          // visit_pos bookkeeping: prev keeps its position; resume there.
          cur = prev;
          continue;
        }
        walk.push_back(in);
        visit_pos[prev] = static_cast<std::int32_t>(walk.size());
        cur = prev;
      }
      if (!reached_source) continue;
      // mo: relaxed — epilogue note at the top of this function.
      Cap delta = excess_[v].load(std::memory_order_relaxed);
      for (ArcId a : walk) {
        delta = std::min(delta, flow_[a].load(std::memory_order_relaxed));
      }
      // mo: relaxed — epilogue note at the top of this function.
      for (ArcId a : walk) {
        flow_[a].fetch_sub(delta, std::memory_order_relaxed);
        flow_[a ^ 1].fetch_add(delta, std::memory_order_relaxed);
      }
      excess_[v].fetch_sub(delta, std::memory_order_relaxed);
    }
  }
}

std::size_t ParallelEngineBase::retained_bytes_base() const {
  return adj_offset_.capacity() * sizeof(std::int32_t) +
         adj_arcs_.capacity() * sizeof(ArcId) +
         arc_head_.capacity() * sizeof(Vertex) +
         cap_.capacity() * sizeof(Cap) +
         flow_.size() * sizeof(std::atomic<Cap>) +
         excess_.size() * sizeof(std::atomic<Cap>) +
         bfs_height_.capacity() * sizeof(std::int32_t) +
         bfs_queue_.capacity() * sizeof(Vertex) +
         drain_visit_pos_.capacity() * sizeof(std::int32_t) +
         drain_walk_.capacity() * sizeof(ArcId);
}

}  // namespace repflow::parallel
