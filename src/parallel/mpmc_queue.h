// Bounded lock-free multi-producer/multi-consumer FIFO (Vyukov's design).
//
// The parallel push-relabel engine distributes active vertices through this
// queue so that, per the paper's Section V requirement (following Hong & He
// [31]), no locks are taken anywhere on the push/relabel hot path — all
// coordination is atomic read-modify-write.
//
// Memory-order audit (the full protocol; verified under ThreadSanitizer by
// tests/analysis/stress_concurrent_solve.cpp):
//
//   * Each cell's `sequence` is the only synchronization edge for its
//     `value`.  A writer publishes with sequence.store(release) AFTER
//     writing value; a reader first observes that store with
//     sequence.load(acquire) and only then reads value.  The release/
//     acquire pair makes the plain (non-atomic) value access data-race-free
//     in both directions (producer->consumer on push, consumer->recycler on
//     the wrap-around reuse of the cell).
//
//   * head_/tail_ are mere tickets: the CAS that claims position `pos` can
//     be relaxed because claiming grants no access by itself — the claimant
//     still waits on the cell's sequence before touching value, so every
//     inter-thread data edge goes through the sequence pair above.  Relaxed
//     RMWs still totally order claims per counter (RMW atomicity), which is
//     all FIFO ordering needs.
//
//   * The initial sequence stores in the constructor are relaxed: the
//     constructor is single-threaded and the object is published to workers
//     via the engine's mutex/condition-variable handoff, which provides the
//     necessary happens-before.
#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace repflow::parallel {

template <typename T>
class MpmcQueue {
 public:
  /// Capacity is rounded up to a power of two; the engine sizes the queue so
  /// that it can never fill (each vertex is enqueued at most once at a time).
  explicit MpmcQueue(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);  // in-place construction (atomics
                                      // are neither copyable nor movable)
    mask_ = cap - 1;
    // mo: relaxed — single-threaded constructor; the engine's pool handoff
    // publishes the whole queue (header audit, bullet 3).
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Non-blocking push; returns false when full.
  bool try_push(T value) {
    Cell* cell;
    // mo: relaxed — ticket peek; the claim CAS re-validates (header audit).
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      // mo: acquire — synchronizes with the consumer's release store that
      // recycled this cell, so the consumer's value read happened-before
      // our value write below (no overwrite of an in-flight read).
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        // mo: relaxed CAS — claiming the ticket grants nothing by itself;
        // the cell's sequence above already carries the data edge.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        // mo: relaxed — ticket re-peek after losing the CAS race.
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = value;
    // mo: release — publishes the value write to the consumer whose
    // acquire load of `sequence` observes pos + 1.
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Non-blocking pop; returns false when empty.
  bool try_pop(T& out) {
    Cell* cell;
    // mo: relaxed — ticket peek; the claim CAS re-validates (header audit).
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      // mo: acquire — synchronizes with the producer's release store,
      // making its value write visible before our value read below.
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        // mo: relaxed CAS — same ticket argument as try_push.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        // mo: relaxed — ticket re-peek after losing the CAS race.
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = cell->value;
    // mo: release — recycles the cell for the producer one lap ahead; its
    // acquire load sees our value read completed.
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };
  // Cells are padded implicitly by vector layout; contention is acceptable
  // for the vertex-id payloads used here.
  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
};

}  // namespace repflow::parallel
