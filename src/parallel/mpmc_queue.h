// Bounded lock-free multi-producer/multi-consumer FIFO (Vyukov's design).
//
// The parallel push-relabel engine distributes active vertices through this
// queue so that, per the paper's Section V requirement (following Hong & He
// [31]), no locks are taken anywhere on the push/relabel hot path — all
// coordination is atomic read-modify-write.
#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace repflow::parallel {

template <typename T>
class MpmcQueue {
 public:
  /// Capacity is rounded up to a power of two; the engine sizes the queue so
  /// that it can never fill (each vertex is enqueued at most once at a time).
  explicit MpmcQueue(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);  // in-place construction (atomics
                                      // are neither copyable nor movable)
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Non-blocking push; returns false when full.
  bool try_push(T value) {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = value;
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Non-blocking pop; returns false when empty.
  bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = cell->value;
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };
  // Cells are padded implicitly by vector layout; contention is acceptable
  // for the vertex-id payloads used here.
  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
};

}  // namespace repflow::parallel
