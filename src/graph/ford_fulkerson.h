// Ford-Fulkerson augmenting-path max-flow (DFS and BFS searches).
//
// Besides the classic "run to max flow" entry point, this engine exposes a
// single-augmentation primitive so the paper's integrated Algorithms 1 and 2
// can interleave capacity incrementation with per-bucket augmentations.
#pragma once

#include <vector>

#include "graph/maxflow.h"

namespace repflow::graph {

enum class SearchOrder {
  kDfs,  // depth-first (the paper's DFS(G, v, t, ...) routine)
  kBfs,  // breadth-first (Edmonds-Karp; shortest augmenting paths)
};

class FordFulkerson {
 public:
  explicit FordFulkerson(FlowNetwork& net, Vertex source, Vertex sink,
                         SearchOrder order = SearchOrder::kDfs);
  /// Publishes the accumulated FlowStats to the obs registry.
  ~FordFulkerson();

  /// Search for one residual path from `from` to the sink and, if found,
  /// augment by the path bottleneck.  Returns the pushed amount (0 if no
  /// path).  `from` defaults to the source.
  Cap augment_once(Vertex from = kInvalidVertex);

  /// Augment until no residual s-t path remains; returns total pushed in
  /// this call (flow already on the network is untouched and conserved).
  Cap run();

  /// clear_flow() + run(): the classical black-box interface.
  MaxflowResult solve_from_zero();

  const FlowStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

 private:
  Cap dfs_augment(Vertex from);
  Cap bfs_augment(Vertex from);

  FlowNetwork& net_;
  Vertex source_;
  Vertex sink_;
  SearchOrder order_;
  FlowStats stats_;
  // Scratch reused across augmentations to avoid per-call allocation.
  std::vector<std::uint32_t> visited_mark_;
  std::uint32_t mark_epoch_ = 0;
  std::vector<ArcId> parent_arc_;
  std::vector<Vertex> queue_;
  std::vector<ArcId> dfs_path_;
  std::vector<std::size_t> dfs_arc_index_;
};

}  // namespace repflow::graph
