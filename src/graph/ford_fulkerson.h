// Ford-Fulkerson augmenting-path max-flow (DFS and BFS searches).
//
// Besides the classic "run to max flow" entry point, this engine exposes a
// single-augmentation primitive so the paper's integrated Algorithms 1 and 2
// can interleave capacity incrementation with per-bucket augmentations.
//
// Search scratch lives in a MaxflowWorkspace (graph/workspace.h); inject one
// to share buffers with sibling engines, or omit it for a private workspace.
#pragma once

#include <vector>

#include "graph/maxflow.h"
#include "graph/workspace.h"

namespace repflow::graph {

enum class SearchOrder {
  kDfs,  // depth-first (the paper's DFS(G, v, t, ...) routine)
  kBfs,  // breadth-first (Edmonds-Karp; shortest augmenting paths)
};

class FordFulkerson {
 public:
  explicit FordFulkerson(FlowNetwork& net, Vertex source, Vertex sink,
                         SearchOrder order = SearchOrder::kDfs,
                         MaxflowWorkspace* workspace = nullptr);
  /// Publishes the accumulated FlowStats to the obs registry.
  ~FordFulkerson();

  /// Re-target the engine after the network was rebuilt in place.  Keeps
  /// buffer capacity and the cumulative stats() total.
  void rebind(Vertex source, Vertex sink);

  /// Search for one residual path from `from` to the sink and, if found,
  /// augment by the path bottleneck.  Returns the pushed amount (0 if no
  /// path).  `from` defaults to the source.
  Cap augment_once(Vertex from = kInvalidVertex);

  /// Augment until no residual s-t path remains; returns total pushed in
  /// this call (flow already on the network is untouched and conserved).
  Cap run();

  /// clear_flow() + run(): the classical black-box interface.  The result
  /// carries this run's operation counts; stats() keeps accumulating.
  MaxflowResult solve_from_zero();

  const FlowStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// The workspace in use (injected or owned) — for footprint reporting.
  const MaxflowWorkspace& workspace() const { return *ws_; }

 private:
  void validate_endpoints() const;
  void ensure_sizes();
  Cap dfs_augment(Vertex from);
  Cap bfs_augment(Vertex from);

  FlowNetwork& net_;
  Vertex source_;
  Vertex sink_;
  SearchOrder order_;
  FlowStats stats_;

  MaxflowWorkspace owned_workspace_;  // used when none is injected
  MaxflowWorkspace* ws_;
};

}  // namespace repflow::graph
