#include "graph/flow_network.h"

#include <cassert>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace repflow::graph {

namespace {
constexpr std::size_t kMaxVertices =
    static_cast<std::size_t>(std::numeric_limits<Vertex>::max());
constexpr std::size_t kMaxArcs =
    static_cast<std::size_t>(std::numeric_limits<ArcId>::max());
}  // namespace

Vertex FlowNetwork::add_vertex() {
  add_vertices(1);
  return num_vertices() - 1;
}

void FlowNetwork::add_vertices(Vertex count) {
  if (count < 0) throw std::invalid_argument("add_vertices: negative count");
  const std::size_t total =
      out_degree_.size() + static_cast<std::size_t>(count);
  if (total > kMaxVertices) {
    throw std::length_error("add_vertices: vertex count " +
                            std::to_string(total) + " exceeds Vertex max " +
                            std::to_string(kMaxVertices));
  }
  out_degree_.resize(total, 0);
  csr_dirty_ = true;
}

ArcId FlowNetwork::add_arc(Vertex tail, Vertex head, Cap cap) {
  if (tail < 0 || tail >= num_vertices() || head < 0 ||
      head >= num_vertices()) {
    throw std::out_of_range("add_arc: vertex out of range");
  }
  if (cap < 0) throw std::invalid_argument("add_arc: negative capacity");
  if (head_.size() + 2 > kMaxArcs) {
    throw std::length_error("add_arc: arc slot count " +
                            std::to_string(head_.size() + 2) +
                            " exceeds ArcId max " + std::to_string(kMaxArcs));
  }
  const ArcId forward = static_cast<ArcId>(head_.size());
  head_.push_back(head);
  cap_.push_back(cap);
  flow_.push_back(0);
  head_.push_back(tail);
  cap_.push_back(0);
  flow_.push_back(0);
  ++out_degree_[tail];
  ++out_degree_[head];
  csr_dirty_ = true;
  return forward;
}

void FlowNetwork::reset(Vertex vertices) {
  head_.clear();
  cap_.clear();
  flow_.clear();
  out_degree_.clear();
  csr_dirty_ = true;
  if (vertices > 0) add_vertices(vertices);
}

void FlowNetwork::rebuild_csr() const {
  // Counting sort of arc ids by tail vertex.  Arc ids are scattered in
  // ascending order, so each vertex's CSR range lists its arcs in insertion
  // order — identical adjacency order to the old vector-of-vectors layout,
  // which keeps every engine's traversal (and thus results) deterministic.
  const std::size_t v_count = out_degree_.size();
  first_out_.resize(v_count + 1);
  csr_cursor_.resize(v_count);
  std::int32_t offset = 0;
  for (std::size_t v = 0; v < v_count; ++v) {
    first_out_[v] = offset;
    csr_cursor_[v] = offset;
    offset += out_degree_[v];
  }
  first_out_[v_count] = offset;
  out_arcs_.resize(static_cast<std::size_t>(offset));
  const ArcId arcs = static_cast<ArcId>(head_.size());
  for (ArcId a = 0; a < arcs; ++a) {
    const Vertex t = head_[a ^ 1];  // tail(a)
    out_arcs_[static_cast<std::size_t>(csr_cursor_[t]++)] = a;
  }
  csr_dirty_ = false;
}

void FlowNetwork::push_on(ArcId a, Cap delta) {
  assert(residual(a) >= delta && "push exceeds residual capacity");
  flow_[a] += delta;
  flow_[a ^ 1] -= delta;
}

void FlowNetwork::set_pair_flow(ArcId forward_arc, Cap f) {
  assert(is_forward(forward_arc));
  flow_[forward_arc] = f;
  flow_[forward_arc ^ 1] = -f;
}

void FlowNetwork::clear_flow() {
  for (auto& f : flow_) f = 0;
}

std::vector<Cap> FlowNetwork::save_flows() const {
  std::vector<Cap> snapshot;
  save_flows_into(snapshot);
  return snapshot;
}

void FlowNetwork::save_flows_into(std::vector<Cap>& snapshot) const {
  snapshot.resize(static_cast<std::size_t>(num_edges()));
  for (ArcId e = 0; e < num_edges(); ++e) snapshot[e] = flow_[2 * e];
}

void FlowNetwork::restore_flows(const std::vector<Cap>& snapshot) {
  if (snapshot.size() != static_cast<std::size_t>(num_edges())) {
    throw std::invalid_argument("restore_flows: snapshot size mismatch");
  }
  for (ArcId e = 0; e < num_edges(); ++e) {
    flow_[2 * e] = snapshot[e];
    flow_[2 * e + 1] = -snapshot[e];
  }
}

Cap FlowNetwork::flow_into(Vertex t) const {
  Cap total = 0;
  for (ArcId a : out_arcs(t)) {
    // Out-arc `a` of t carries t's outgoing flow; flow INTO t on the paired
    // arc is -flow(a).
    total -= flow_[a];
  }
  return total;
}

Cap FlowNetwork::net_out_flow(Vertex v) const {
  Cap total = 0;
  for (ArcId a : out_arcs(v)) total += flow_[a];
  return total;
}

std::size_t FlowNetwork::retained_bytes() const {
  return head_.capacity() * sizeof(Vertex) + cap_.capacity() * sizeof(Cap) +
         flow_.capacity() * sizeof(Cap) +
         out_degree_.capacity() * sizeof(std::int32_t) +
         out_arcs_.capacity() * sizeof(ArcId) +
         first_out_.capacity() * sizeof(std::int32_t) +
         csr_cursor_.capacity() * sizeof(std::int32_t);
}

std::string FlowNetwork::to_string() const {
  std::ostringstream os;
  os << "FlowNetwork{V=" << num_vertices() << ", E=" << num_edges() << "}\n";
  for (ArcId a = 0; a < num_arcs(); a += 2) {
    os << "  " << tail(a) << " -> " << head(a) << "  cap=" << cap_[a]
       << " flow=" << flow_[a] << "\n";
  }
  return os.str();
}

}  // namespace repflow::graph
