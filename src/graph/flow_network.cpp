#include "graph/flow_network.h"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace repflow::graph {

Vertex FlowNetwork::add_vertex() {
  first_out_.emplace_back();
  return static_cast<Vertex>(first_out_.size() - 1);
}

void FlowNetwork::add_vertices(Vertex count) {
  if (count < 0) throw std::invalid_argument("add_vertices: negative count");
  first_out_.resize(first_out_.size() + static_cast<std::size_t>(count));
}

ArcId FlowNetwork::add_arc(Vertex tail, Vertex head, Cap cap) {
  if (tail < 0 || tail >= num_vertices() || head < 0 ||
      head >= num_vertices()) {
    throw std::out_of_range("add_arc: vertex out of range");
  }
  if (cap < 0) throw std::invalid_argument("add_arc: negative capacity");
  const ArcId forward = static_cast<ArcId>(head_.size());
  head_.push_back(head);
  cap_.push_back(cap);
  flow_.push_back(0);
  head_.push_back(tail);
  cap_.push_back(0);
  flow_.push_back(0);
  first_out_[tail].push_back(forward);
  first_out_[head].push_back(forward + 1);
  return forward;
}

void FlowNetwork::push_on(ArcId a, Cap delta) {
  assert(residual(a) >= delta && "push exceeds residual capacity");
  flow_[a] += delta;
  flow_[a ^ 1] -= delta;
}

void FlowNetwork::set_pair_flow(ArcId forward_arc, Cap f) {
  assert(is_forward(forward_arc));
  flow_[forward_arc] = f;
  flow_[forward_arc ^ 1] = -f;
}

void FlowNetwork::clear_flow() {
  for (auto& f : flow_) f = 0;
}

std::vector<Cap> FlowNetwork::save_flows() const {
  std::vector<Cap> snapshot(static_cast<std::size_t>(num_edges()));
  for (ArcId e = 0; e < num_edges(); ++e) snapshot[e] = flow_[2 * e];
  return snapshot;
}

void FlowNetwork::restore_flows(const std::vector<Cap>& snapshot) {
  if (snapshot.size() != static_cast<std::size_t>(num_edges())) {
    throw std::invalid_argument("restore_flows: snapshot size mismatch");
  }
  for (ArcId e = 0; e < num_edges(); ++e) {
    flow_[2 * e] = snapshot[e];
    flow_[2 * e + 1] = -snapshot[e];
  }
}

Cap FlowNetwork::flow_into(Vertex t) const {
  Cap total = 0;
  for (ArcId a : out_arcs(t)) {
    // Out-arc `a` of t carries t's outgoing flow; flow INTO t on the paired
    // arc is -flow(a).
    total -= flow_[a];
  }
  return total;
}

Cap FlowNetwork::net_out_flow(Vertex v) const {
  Cap total = 0;
  for (ArcId a : out_arcs(v)) total += flow_[a];
  return total;
}

std::string FlowNetwork::to_string() const {
  std::ostringstream os;
  os << "FlowNetwork{V=" << num_vertices() << ", E=" << num_edges() << "}\n";
  for (ArcId a = 0; a < num_arcs(); a += 2) {
    os << "  " << tail(a) << " -> " << head(a) << "  cap=" << cap_[a]
       << " flow=" << flow_[a] << "\n";
  }
  return os.str();
}

}  // namespace repflow::graph
