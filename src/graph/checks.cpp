#include "graph/checks.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace repflow::graph {

FlowCheck validate_flow(const FlowNetwork& net, Vertex source, Vertex sink) {
  FlowCheck check;
  auto fail = [&](std::string why) {
    check.ok = false;
    check.reason = std::move(why);
    return check;
  };
  for (ArcId a = 0; a < net.num_arcs(); a += 2) {
    if (net.flow(a) < 0) {
      std::ostringstream os;
      os << "negative flow on arc " << a << " (" << net.tail(a) << "->"
         << net.head(a) << "): " << net.flow(a);
      return fail(os.str());
    }
    if (net.flow(a) > net.capacity(a)) {
      std::ostringstream os;
      os << "capacity violated on arc " << a << " (" << net.tail(a) << "->"
         << net.head(a) << "): flow " << net.flow(a) << " > cap "
         << net.capacity(a);
      return fail(os.str());
    }
    if (net.flow(a ^ 1) != -net.flow(a)) {
      std::ostringstream os;
      os << "antisymmetry violated on arc pair " << a;
      return fail(os.str());
    }
  }
  for (Vertex v = 0; v < net.num_vertices(); ++v) {
    if (v == source || v == sink) continue;
    if (net.net_out_flow(v) != 0) {
      std::ostringstream os;
      os << "conservation violated at vertex " << v << ": net out-flow "
         << net.net_out_flow(v);
      return fail(os.str());
    }
  }
  return check;
}

Cap flow_value(const FlowNetwork& net, Vertex sink) {
  return net.flow_into(sink);
}

Cut residual_min_cut(const FlowNetwork& net, Vertex source) {
  Cut cut;
  cut.source_side.assign(static_cast<std::size_t>(net.num_vertices()), false);
  std::vector<Vertex> stack{source};
  cut.source_side[source] = true;
  while (!stack.empty()) {
    const Vertex v = stack.back();
    stack.pop_back();
    for (ArcId a : net.out_arcs(v)) {
      const Vertex w = net.head(a);
      if (net.residual(a) > 0 && !cut.source_side[w]) {
        cut.source_side[w] = true;
        stack.push_back(w);
      }
    }
  }
  for (ArcId a = 0; a < net.num_arcs(); a += 2) {
    if (cut.source_side[net.tail(a)] && !cut.source_side[net.head(a)]) {
      cut.capacity += net.capacity(a);
      cut.crossing_arcs.push_back(a);
    }
  }
  return cut;
}

std::vector<FlowPath> decompose_paths(FlowNetwork& net, Vertex source,
                                      Vertex sink) {
  // Work on a copy of the forward flows so the network is not mutated.
  std::vector<Cap> remaining(static_cast<std::size_t>(net.num_arcs()), 0);
  for (ArcId a = 0; a < net.num_arcs(); a += 2) remaining[a] = net.flow(a);

  std::vector<FlowPath> paths;
  const auto n = static_cast<std::size_t>(net.num_vertices());
  // Because the remaining flow always satisfies conservation, a greedy walk
  // from the source along positive-remaining arcs can only end at the sink
  // or revisit a vertex (a flow cycle).  Cycles are canceled and the walk is
  // restarted; each restart strictly decreases total remaining flow, so the
  // loop terminates.
  while (true) {
    std::vector<ArcId> walk;
    std::vector<std::int32_t> visit_pos(n, -1);
    Vertex v = source;
    visit_pos[v] = 0;
    bool reached_sink = false;
    bool canceled_cycle = false;
    while (!reached_sink && !canceled_cycle) {
      if (v == sink) {
        reached_sink = true;
        break;
      }
      ArcId next = kInvalidArc;
      for (ArcId a : net.out_arcs(v)) {
        if ((a & 1) == 0 && remaining[a] > 0) {
          next = a;
          break;
        }
      }
      if (next == kInvalidArc) break;  // only possible when v == source
      const Vertex w = net.head(next);
      if (visit_pos[w] >= 0) {
        // Cancel the cycle w -> ... -> v -> w.
        Cap cycle_min = remaining[next];
        for (std::size_t k = static_cast<std::size_t>(visit_pos[w]);
             k < walk.size(); ++k) {
          cycle_min = std::min(cycle_min, remaining[walk[k]]);
        }
        remaining[next] -= cycle_min;
        for (std::size_t k = static_cast<std::size_t>(visit_pos[w]);
             k < walk.size(); ++k) {
          remaining[walk[k]] -= cycle_min;
        }
        canceled_cycle = true;
        break;
      }
      walk.push_back(next);
      visit_pos[w] = static_cast<std::int32_t>(walk.size());
      v = w;
    }
    if (canceled_cycle) continue;  // restart the walk
    if (!reached_sink || walk.empty()) break;
    Cap bottleneck = std::numeric_limits<Cap>::max();
    for (ArcId a : walk) bottleneck = std::min(bottleneck, remaining[a]);
    for (ArcId a : walk) remaining[a] -= bottleneck;
    paths.push_back(FlowPath{walk, bottleneck});
  }
  return paths;
}

}  // namespace repflow::graph
