// Reusable working memory for the max-flow engines.
//
// Every engine needs the same handful of per-vertex/per-arc buffers
// (heights, excess, arc cursors, BFS/DFS scratch, flow snapshots).  When a
// solver is run once per query — the stream-serving regime of ROADMAP.md —
// allocating those buffers per run dominates small-query latency.  A
// MaxflowWorkspace owns them once; engines grow the vectors monotonically
// (capacity is never released between runs), so steady-state reruns on a
// same-footprint network perform zero heap allocations.
//
// Sharing: one workspace may back several engines of a solver as long as
// the engines never run concurrently — each engine re-initializes the
// fields it uses at the start of a run.  Engines used from different
// threads need different workspaces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/flow_network.h"

namespace repflow::graph {

/// Fixed-capacity FIFO of vertices backed by a ring buffer.  Replaces
/// std::deque in the push-relabel engine: capacity is retained across runs
/// and push/pop never allocate.  Each vertex is enqueued at most once at a
/// time, so a capacity of num_vertices + 1 can never overflow.
class VertexFifo {
 public:
  /// Make room for `vertices` distinct entries; clears the queue when the
  /// ring has to grow (callers resize only between runs).
  void ensure_capacity(std::size_t vertices) {
    if (buf_.size() < vertices + 1) {
      buf_.resize(vertices + 1);
      head_ = tail_ = 0;
    }
  }

  bool empty() const { return head_ == tail_; }

  void push(Vertex v) {
    buf_[tail_] = v;
    tail_ = next(tail_);
  }

  Vertex pop() {
    const Vertex v = buf_[head_];
    head_ = next(head_);
    return v;
  }

  void clear() { head_ = tail_ = 0; }

  std::size_t retained_bytes() const {
    return buf_.capacity() * sizeof(Vertex);
  }

 private:
  std::size_t next(std::size_t i) const {
    return i + 1 == buf_.size() ? 0 : i + 1;
  }

  std::vector<Vertex> buf_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

/// Scratch + state buffers for the bipartite b-matching kernel
/// (core::BipartiteMatcher).  The matcher never materializes the flow
/// network: the instance lives in two flat CSR arrays (bucket->replica-disk
/// adjacency and per-disk matched-bucket slot lists) and the matching state
/// in a handful of parallel vectors.  Like MaxflowWorkspace, every vector
/// grows monotonically, so re-binding a same-footprint problem performs
/// zero heap allocations.
struct MatchingWorkspace {
  // --- instance topology (rebuilt per bind) ---
  std::vector<std::int32_t> first;       // bucket CSR offsets, size Q+1
  std::vector<std::int32_t> adj;         // replica disk ids, bucket-major
  std::vector<std::int32_t> in_degree;   // buckets adjacent to each disk
  std::vector<std::int32_t> disk_first;  // slot-segment offsets, size N+1

  // --- matching state ---
  std::vector<std::int32_t> match;        // bucket -> matched disk, or -1
  std::vector<std::int64_t> cap;          // current sink capacity per disk
  std::vector<std::int32_t> load;         // buckets matched to each disk
  std::vector<std::int32_t> slots;        // per-disk matched-bucket lists
  std::vector<std::int32_t> free_buckets; // currently unmatched buckets

  // --- per-phase scratch (Hopcroft-Karp BFS layering + DFS) ---
  std::vector<std::int32_t> dist;          // bucket BFS layer (-1 = dead)
  std::vector<std::uint32_t> bucket_epoch; // phase-stamped visited flags
  std::vector<std::uint32_t> disk_epoch;
  std::uint32_t epoch = 0;
  std::vector<std::int32_t> queue;        // BFS frontier, capacity Q
  std::vector<std::int32_t> stack_bucket; // DFS frames: bucket per depth
  std::vector<std::int32_t> stack_arc;    //   current adjacency index
  std::vector<std::int32_t> stack_slot;   //   current slot index (-1 = none)

  std::size_t retained_bytes() const {
    return (first.capacity() + adj.capacity() + in_degree.capacity() +
            disk_first.capacity() + match.capacity() + load.capacity() +
            slots.capacity() + free_buckets.capacity() + dist.capacity() +
            queue.capacity() + stack_bucket.capacity() +
            stack_arc.capacity() + stack_slot.capacity()) *
               sizeof(std::int32_t) +
           cap.capacity() * sizeof(std::int64_t) +
           (bucket_epoch.capacity() + disk_epoch.capacity()) *
               sizeof(std::uint32_t);
  }
};

/// Scratch + label state for the bulk-synchronous round engine
/// (parallel::RoundPushRelabel).  Only the plain (non-atomic) buffers live
/// here — the engine's concurrently-written arrays (arc flows, excess
/// deltas, activation stamps) are vectors of std::atomic and stay inside
/// the engine, which keeps this struct freely copyable like the rest of
/// the workspace.  Every vector grows monotonically, so rebinding a
/// same-footprint problem performs zero heap allocations.
struct RoundRelabelWorkspace {
  std::vector<std::int32_t> level;       // stable labels, committed per round
  std::vector<std::int32_t> next_level;  // owner-written relabel buffer
  std::vector<Vertex> active;            // current round's active set
  std::vector<Vertex> frontier;          // global-relabel BFS frontier
  std::vector<Vertex> next_frontier;

  std::size_t retained_bytes() const {
    return (level.capacity() + next_level.capacity()) * sizeof(std::int32_t) +
           (active.capacity() + frontier.capacity() +
            next_frontier.capacity()) *
               sizeof(Vertex);
  }
};

/// The pooled buffer set.  Field groups are disjoint per engine family;
/// see each engine's header for which fields it claims.
struct MaxflowWorkspace {
  // --- push-relabel state (PushRelabel) ---
  std::vector<Cap> excess;
  std::vector<std::int32_t> height;
  std::vector<std::int32_t> height_count;  // gap heuristic: count per height
  std::vector<std::uint8_t> in_queue;
  VertexFifo fifo;

  // --- admissible-arc cursors (PushRelabel, Dinic) ---
  std::vector<std::uint32_t> arc_cursor;

  // --- search scratch (global relabel BFS, FordFulkerson, Dinic) ---
  std::vector<Vertex> vertex_scratch;      // BFS queues / DFS stacks
  std::vector<std::uint32_t> visited_mark; // epoch-stamped visited flags
  std::uint32_t mark_epoch = 0;            // shared so stale marks never alias
  std::vector<ArcId> parent_arc;           // BFS predecessor arcs
  std::vector<ArcId> arc_path;             // DFS augmenting path
  std::vector<std::int32_t> level;         // Dinic level graph

  // --- flow snapshots (Algorithm 6 driver) ---
  std::vector<Cap> flow_snapshot;

  // --- bipartite b-matching kernel (core::BipartiteMatcher) ---
  MatchingWorkspace matching;

  // --- round-based parallel engine (parallel::RoundPushRelabel) ---
  RoundRelabelWorkspace round;

  /// Capacity-based footprint estimate (feeds the workspace.retained_bytes
  /// gauge); counts retained heap blocks, not live elements.
  std::size_t retained_bytes() const {
    return excess.capacity() * sizeof(Cap) +
           height.capacity() * sizeof(std::int32_t) +
           height_count.capacity() * sizeof(std::int32_t) +
           in_queue.capacity() * sizeof(std::uint8_t) +
           fifo.retained_bytes() +
           arc_cursor.capacity() * sizeof(std::uint32_t) +
           vertex_scratch.capacity() * sizeof(Vertex) +
           visited_mark.capacity() * sizeof(std::uint32_t) +
           parent_arc.capacity() * sizeof(ArcId) +
           arc_path.capacity() * sizeof(ArcId) +
           level.capacity() * sizeof(std::int32_t) +
           flow_snapshot.capacity() * sizeof(Cap) +
           matching.retained_bytes() + round.retained_bytes();
  }
};

}  // namespace repflow::graph
