// Flow validity checks, min-cut extraction, and flow decomposition.
//
// These back the property tests: every engine's output must satisfy the
// capacity and conservation constraints (Equation 1 of the paper), and the
// max-flow value must equal the min-cut capacity.
#pragma once

#include <string>
#include <vector>

#include "graph/flow_network.h"

namespace repflow::graph {

/// Outcome of validate_flow; `ok` plus a human-readable reason on failure.
struct FlowCheck {
  bool ok = true;
  std::string reason;
};

/// Check 0 <= flow <= cap on every forward arc, antisymmetry of the arc
/// pairs, and conservation at every vertex except source and sink.
FlowCheck validate_flow(const FlowNetwork& net, Vertex source, Vertex sink);

/// Value of the current flow (net flow into the sink).
Cap flow_value(const FlowNetwork& net, Vertex sink);

/// An s-t cut as the source-side vertex set plus its capacity.
struct Cut {
  std::vector<bool> source_side;
  Cap capacity = 0;
  std::vector<ArcId> crossing_arcs;  // forward arcs from S to V\S
};

/// Extract the canonical min cut of the *current* flow: S = vertices
/// reachable from `source` in the residual graph.  Only meaningful when the
/// flow is maximum; validate with max-flow value == cut.capacity.
Cut residual_min_cut(const FlowNetwork& net, Vertex source);

/// One unit-path of a flow decomposition.
struct FlowPath {
  std::vector<ArcId> arcs;  // forward arcs from source to sink
  Cap amount = 0;
};

/// Decompose the current (acyclic-usage) flow into s-t paths.  Cycles are
/// canceled silently; the sum of path amounts equals the flow value.
std::vector<FlowPath> decompose_paths(FlowNetwork& net, Vertex source,
                                      Vertex sink);

}  // namespace repflow::graph
