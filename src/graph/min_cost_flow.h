// Minimum-cost maximum-flow via successive shortest paths with potentials
// (Bellman-Ford initialization + Dijkstra iterations).
//
// Used by core::solve_min_total_work: among all schedules achieving the
// optimal response time, pick one minimizing a secondary linear objective
// (e.g. total disk busy time / energy).  Costs are per unit of flow on the
// forward arc; reverse arcs carry the negated cost automatically.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/flow_network.h"
#include "graph/maxflow.h"

namespace repflow::graph {

using Cost = double;

class MinCostMaxflow {
 public:
  /// `arc_cost[e]` is the per-unit cost of forward edge e (edge index =
  /// arc id / 2); must cover all net.num_edges() edges.
  MinCostMaxflow(FlowNetwork& net, Vertex source, Vertex sink,
                 std::vector<Cost> arc_cost);

  struct Result {
    Cap flow = 0;
    Cost cost = 0.0;
    FlowStats stats;
  };

  /// clear_flow() + successive shortest augmentations to max flow.
  Result solve_from_zero();

  const FlowStats& stats() const { return stats_; }

 private:
  Cost arc_cost(ArcId a) const {
    const Cost c = cost_[static_cast<std::size_t>(a >> 1)];
    return (a & 1) ? -c : c;
  }
  Cost reduced_cost(ArcId a) const {
    return arc_cost(a) + potential_[net_.tail(a)] - potential_[net_.head(a)];
  }
  bool dijkstra();

  FlowNetwork& net_;
  Vertex source_;
  Vertex sink_;
  std::vector<Cost> cost_;       // per edge (forward arc id / 2)
  std::vector<Cost> potential_;  // node potentials (Johnson reweighting)
  std::vector<Cost> dist_;
  std::vector<ArcId> parent_arc_;
  FlowStats stats_;
};

}  // namespace repflow::graph
