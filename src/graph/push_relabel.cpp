#include "graph/push_relabel.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace repflow::graph {

PushRelabel::PushRelabel(FlowNetwork& net, Vertex source, Vertex sink,
                         PushRelabelOptions options)
    : net_(net), source_(source), sink_(sink), options_(options) {
  if (source < 0 || source >= net.num_vertices() || sink < 0 ||
      sink >= net.num_vertices() || source == sink) {
    throw std::invalid_argument("PushRelabel: bad source/sink");
  }
  ensure_sizes();
}

PushRelabel::~PushRelabel() { publish_flow_stats(stats_); }

void PushRelabel::ensure_sizes() {
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  if (excess_.size() < n) {
    excess_.resize(n, 0);
    height_.resize(n, 0);
    arc_cursor_.resize(n, 0);
    in_queue_.resize(n, false);
    height_count_.assign(2 * n + 2, 0);
  }
}

void PushRelabel::enqueue_if_active(Vertex v) {
  if (v == source_ || v == sink_) return;
  if (excess_[v] > 0 && !in_queue_[v]) {
    in_queue_[v] = true;
    queue_.push_back(v);
  }
}

void PushRelabel::saturate_source_arcs() {
  ensure_sizes();
  for (ArcId a : net_.out_arcs(source_)) {
    const Cap delta = net_.residual(a);
    if (delta <= 0) continue;
    net_.push_on(a, delta);
    const Vertex v = net_.head(a);
    excess_[v] += delta;
    enqueue_if_active(v);
  }
}

void PushRelabel::reinitialize_heights() {
  ensure_sizes();
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  excess_[source_] = 0;
  std::fill(arc_cursor_.begin(), arc_cursor_.end(), 0);
  if (options_.height_init == HeightInit::kZero) {
    std::fill(height_.begin(), height_.end(), 0);
    height_[source_] = static_cast<std::int32_t>(n);
    std::fill(height_count_.begin(), height_count_.end(), 0);
    height_count_[0] = static_cast<std::int32_t>(n - 1);
    height_count_[n] = 1;
  } else {
    global_relabel();
  }
  relabels_since_global_ = 0;
}

void PushRelabel::global_relabel() {
  ++stats_.global_relabels;
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  constexpr std::int32_t kUnset = -1;
  std::fill(height_.begin(), height_.end(), kUnset);
  // Backward BFS from the sink over residual arcs: w can reach v along
  // (w -> v) iff residual(reverse(out-arc of v pointing at w)) > 0.
  auto backward_bfs = [&](Vertex root, std::int32_t base) {
    height_[root] = base;
    bfs_scratch_.clear();
    bfs_scratch_.push_back(root);
    std::size_t qi = 0;
    while (qi < bfs_scratch_.size()) {
      const Vertex v = bfs_scratch_[qi++];
      for (ArcId a : net_.out_arcs(v)) {
        const Vertex w = net_.head(a);
        if (height_[w] != kUnset) continue;
        if (net_.residual(net_.reverse(a)) <= 0) continue;
        height_[w] = height_[v] + 1;
        bfs_scratch_.push_back(w);
      }
    }
  };
  backward_bfs(sink_, 0);
  const auto height_s = static_cast<std::int32_t>(n);
  if (height_[source_] == kUnset) height_[source_] = height_s;
  // Vertices cut off from the sink route their excess back to the source.
  backward_bfs(source_, height_s);
  for (std::size_t v = 0; v < n; ++v) {
    if (height_[v] == kUnset) {
      // Isolated from both s and t in the residual graph; such a vertex can
      // never be active, park it at the ceiling.
      height_[v] = static_cast<std::int32_t>(2 * n);
    }
  }
  height_[source_] = height_s;  // BFS from source must not lower it
  std::fill(height_count_.begin(), height_count_.end(), 0);
  for (std::size_t v = 0; v < n; ++v) ++height_count_[height_[v]];
  std::fill(arc_cursor_.begin(), arc_cursor_.end(), 0);
  relabels_since_global_ = 0;
}

void PushRelabel::relabel(Vertex v) {
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  std::int32_t min_height = std::numeric_limits<std::int32_t>::max();
  for (ArcId a : net_.out_arcs(v)) {
    if (net_.residual(a) > 0) {
      min_height = std::min(min_height, height_[net_.head(a)]);
    }
  }
  if (min_height == std::numeric_limits<std::int32_t>::max()) {
    // No residual out-arc at all: park at ceiling (cannot be active again
    // without receiving flow, which would create a residual reverse arc).
    min_height = static_cast<std::int32_t>(2 * n) - 1;
  }
  const std::int32_t old_height = height_[v];
  const std::int32_t new_height =
      std::min(min_height + 1, static_cast<std::int32_t>(2 * n));
  if (new_height <= old_height) {
    // An admissible arc appeared behind the cursor (created by an incoming
    // push after the cursor passed it).  Rescan instead of lifting.
    arc_cursor_[v] = 0;
    return;
  }
  --height_count_[old_height];
  height_[v] = new_height;
  ++height_count_[new_height];
  arc_cursor_[v] = 0;
  ++stats_.relabels;
  ++relabels_since_global_;
  if (options_.use_gap_heuristic && height_count_[old_height] == 0 &&
      old_height < static_cast<std::int32_t>(n)) {
    apply_gap(old_height);
  }
}

void PushRelabel::apply_gap(std::int32_t emptied_height) {
  // Any vertex with emptied_height < h < n can no longer reach the sink;
  // lift it above n so its excess heads back to the source directly.
  const auto n = static_cast<std::int32_t>(net_.num_vertices());
  for (Vertex v = 0; v < n; ++v) {
    if (v == source_ || v == sink_) continue;
    if (height_[v] > emptied_height && height_[v] < n) {
      --height_count_[height_[v]];
      height_[v] = n + 1;
      ++height_count_[height_[v]];
      arc_cursor_[v] = 0;
      ++stats_.gap_jumps;
    }
  }
}

void PushRelabel::discharge(Vertex v) {
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  auto arcs = net_.out_arcs(v);
  while (excess_[v] > 0) {
    if (arc_cursor_[v] >= arcs.size()) {
      relabel(v);
      if (height_[v] >= static_cast<std::int32_t>(2 * n)) {
        break;  // at the ceiling with no residual out-arc; cannot be active
      }
      continue;  // relabel reset the cursor; rescan for admissible arcs
    }
    const ArcId a = arcs[arc_cursor_[v]];
    const Vertex w = net_.head(a);
    if (net_.residual(a) > 0 && height_[v] == height_[w] + 1) {
      const Cap delta = std::min(excess_[v], net_.residual(a));
      net_.push_on(a, delta);
      excess_[v] -= delta;
      excess_[w] += delta;
      ++stats_.pushes;
      enqueue_if_active(w);
      if (net_.residual(a) == 0) ++arc_cursor_[v];
    } else {
      ++arc_cursor_[v];
    }
  }
}

Cap PushRelabel::run() {
  ensure_sizes();
  const auto n = static_cast<std::uint64_t>(net_.num_vertices());
  const std::uint64_t global_interval =
      options_.global_relabel_interval_factor == 0
          ? 0
          : options_.global_relabel_interval_factor * n;
  while (!queue_.empty()) {
    if (global_interval != 0 && relabels_since_global_ >= global_interval) {
      global_relabel();
    }
    const Vertex v = queue_.front();
    queue_.pop_front();
    in_queue_[v] = false;
    discharge(v);
    // A discharge interrupted by the ceiling guard may leave excess; requeue
    // would spin, so assert-quietly: such a vertex has no residual out-arc
    // and can only become pushable again after receiving flow, which
    // re-enqueues it via enqueue_if_active.
  }
  return excess_[sink_];
}

Cap PushRelabel::resume() {
  saturate_source_arcs();
  reinitialize_heights();
  return run();
}

MaxflowResult PushRelabel::solve_from_zero() {
  ensure_sizes();
  net_.clear_flow();
  std::fill(excess_.begin(), excess_.end(), 0);
  std::fill(in_queue_.begin(), in_queue_.end(), false);
  queue_.clear();
  reset_stats();
  MaxflowResult result;
  result.value = resume();
  result.stats = stats_;
  return result;
}

void PushRelabel::reset_excess_after_restore(Cap sink_excess) {
  ensure_sizes();
  std::fill(excess_.begin(), excess_.end(), 0);
  excess_[sink_] = sink_excess;
  std::fill(in_queue_.begin(), in_queue_.end(), false);
  queue_.clear();
}

}  // namespace repflow::graph
