#include "graph/push_relabel.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "analysis/check.h"

namespace repflow::graph {

PushRelabel::PushRelabel(FlowNetwork& net, Vertex source, Vertex sink,
                         PushRelabelOptions options,
                         MaxflowWorkspace* workspace)
    : net_(net),
      source_(source),
      sink_(sink),
      options_(options),
      ws_(workspace != nullptr ? workspace : &owned_workspace_) {
  // Full rebind clear: an injected workspace may hold state from a previous
  // engine, and resume() (unlike solve_from_zero) relies on a clean start.
  rebind(source, sink);
}

PushRelabel::~PushRelabel() { publish_flow_stats(stats_); }

void PushRelabel::validate_endpoints() const {
  if (source_ < 0 || source_ >= net_.num_vertices() || sink_ < 0 ||
      sink_ >= net_.num_vertices() || source_ == sink_) {
    throw std::invalid_argument("PushRelabel: bad source/sink");
  }
}

void PushRelabel::ensure_sizes() {
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  if (ws_->excess.size() < n) {
    ws_->excess.resize(n, 0);
    ws_->height.resize(n, 0);
    ws_->in_queue.resize(n, 0);
    ws_->height_count.assign(2 * n + 2, 0);
  }
  if (ws_->arc_cursor.size() < n) ws_->arc_cursor.resize(n, 0);
  ws_->fifo.ensure_capacity(n);
}

void PushRelabel::rebind(Vertex source, Vertex sink) {
  source_ = source;
  sink_ = sink;
  validate_endpoints();
  ensure_sizes();
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  std::fill_n(ws_->excess.begin(), n, Cap{0});
  std::fill_n(ws_->in_queue.begin(), n, std::uint8_t{0});
  ws_->fifo.clear();
  relabels_since_global_ = 0;
}

void PushRelabel::enqueue_if_active(Vertex v) {
  if (v == source_ || v == sink_) return;
  if (ws_->excess[v] > 0 && !ws_->in_queue[v]) {
    ws_->in_queue[v] = 1;
    ws_->fifo.push(v);
  }
}

void PushRelabel::saturate_source_arcs() {
  ensure_sizes();
  for (ArcId a : net_.out_arcs(source_)) {
    const Cap delta = net_.residual(a);
    if (delta <= 0) continue;
    net_.push_on(a, delta);
    const Vertex v = net_.head(a);
    ws_->excess[v] += delta;
    enqueue_if_active(v);
  }
}

void PushRelabel::reinitialize_heights() {
  ensure_sizes();
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  ws_->excess[source_] = 0;
  std::fill(ws_->arc_cursor.begin(), ws_->arc_cursor.end(), 0u);
  if (options_.height_init == HeightInit::kZero) {
    std::fill(ws_->height.begin(), ws_->height.end(), 0);
    ws_->height[source_] = static_cast<std::int32_t>(n);
    std::fill(ws_->height_count.begin(), ws_->height_count.end(), 0);
    ws_->height_count[0] = static_cast<std::int32_t>(n - 1);
    ws_->height_count[n] = 1;
  } else {
    global_relabel();
  }
  relabels_since_global_ = 0;
}

void PushRelabel::global_relabel() {
  ++stats_.global_relabels;
  auto& height = ws_->height;
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  constexpr std::int32_t kUnset = -1;
  std::fill(height.begin(), height.end(), kUnset);
  // Backward BFS from the sink over residual arcs: w can reach v along
  // (w -> v) iff residual(reverse(out-arc of v pointing at w)) > 0.
  auto backward_bfs = [&](Vertex root, std::int32_t base) {
    height[root] = base;
    auto& queue = ws_->vertex_scratch;
    queue.clear();
    queue.push_back(root);
    std::size_t qi = 0;
    while (qi < queue.size()) {
      const Vertex v = queue[qi++];
      for (ArcId a : net_.out_arcs(v)) {
        const Vertex w = net_.head(a);
        if (height[w] != kUnset) continue;
        if (net_.residual(net_.reverse(a)) <= 0) continue;
        height[w] = height[v] + 1;
        queue.push_back(w);
      }
    }
  };
  backward_bfs(sink_, 0);
  const auto height_s = static_cast<std::int32_t>(n);
  if (height[source_] == kUnset) height[source_] = height_s;
  // Vertices cut off from the sink route their excess back to the source.
  backward_bfs(source_, height_s);
  for (std::size_t v = 0; v < n; ++v) {
    if (height[v] == kUnset) {
      // Isolated from both s and t in the residual graph; such a vertex can
      // never be active, park it at the ceiling.
      height[v] = static_cast<std::int32_t>(2 * n);
    }
  }
  height[source_] = height_s;  // BFS from source must not lower it
  std::fill(ws_->height_count.begin(), ws_->height_count.end(), 0);
  for (std::size_t v = 0; v < n; ++v) ++ws_->height_count[height[v]];
  std::fill(ws_->arc_cursor.begin(), ws_->arc_cursor.end(), 0u);
  relabels_since_global_ = 0;
  // Post-relabel-batch seam: exact heights must form a valid labeling
  // (heights only ever rise within a run, so a lowered label here would
  // mean the BFS saw stale flows).
  REPFLOW_CHECK_LABELING(net_, source_, sink_, ws_->height,
                         "push_relabel.post_global_relabel");
}

void PushRelabel::relabel(Vertex v) {
  auto& height = ws_->height;
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  std::int32_t min_height = std::numeric_limits<std::int32_t>::max();
  for (ArcId a : net_.out_arcs(v)) {
    if (net_.residual(a) > 0) {
      min_height = std::min(min_height, height[net_.head(a)]);
    }
  }
  if (min_height == std::numeric_limits<std::int32_t>::max()) {
    // No residual out-arc at all: park at ceiling (cannot be active again
    // without receiving flow, which would create a residual reverse arc).
    min_height = static_cast<std::int32_t>(2 * n) - 1;
  }
  const std::int32_t old_height = height[v];
  const std::int32_t new_height =
      std::min(min_height + 1, static_cast<std::int32_t>(2 * n));
  if (new_height <= old_height) {
    // An admissible arc appeared behind the cursor (created by an incoming
    // push after the cursor passed it).  Rescan instead of lifting.
    ws_->arc_cursor[v] = 0;
    return;
  }
  --ws_->height_count[old_height];
  height[v] = new_height;
  ++ws_->height_count[new_height];
  ws_->arc_cursor[v] = 0;
  ++stats_.relabels;
  ++relabels_since_global_;
  if (options_.use_gap_heuristic && ws_->height_count[old_height] == 0 &&
      old_height < static_cast<std::int32_t>(n)) {
    apply_gap(old_height);
  }
}

void PushRelabel::apply_gap(std::int32_t emptied_height) {
  // Any vertex with emptied_height < h < n can no longer reach the sink;
  // lift it above n so its excess heads back to the source directly.
  auto& height = ws_->height;
  const auto n = static_cast<std::int32_t>(net_.num_vertices());
  for (Vertex v = 0; v < n; ++v) {
    if (v == source_ || v == sink_) continue;
    if (height[v] > emptied_height && height[v] < n) {
      --ws_->height_count[height[v]];
      height[v] = n + 1;
      ++ws_->height_count[height[v]];
      ws_->arc_cursor[v] = 0;
      ++stats_.gap_jumps;
    }
  }
}

void PushRelabel::discharge(Vertex v) {
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  auto arcs = net_.out_arcs(v);
  while (ws_->excess[v] > 0) {
    if (ws_->arc_cursor[v] >= arcs.size()) {
      relabel(v);
      if (ws_->height[v] >= static_cast<std::int32_t>(2 * n)) {
        break;  // at the ceiling with no residual out-arc; cannot be active
      }
      continue;  // relabel reset the cursor; rescan for admissible arcs
    }
    const ArcId a = arcs[ws_->arc_cursor[v]];
    const Vertex w = net_.head(a);
    if (net_.residual(a) > 0 && ws_->height[v] == ws_->height[w] + 1) {
      const Cap delta = std::min(ws_->excess[v], net_.residual(a));
      net_.push_on(a, delta);
      ws_->excess[v] -= delta;
      ws_->excess[w] += delta;
      ++stats_.pushes;
      enqueue_if_active(w);
      if (net_.residual(a) == 0) ++ws_->arc_cursor[v];
    } else {
      ++ws_->arc_cursor[v];
    }
  }
}

Cap PushRelabel::run() {
  ensure_sizes();
  const auto n = static_cast<std::uint64_t>(net_.num_vertices());
  const std::uint64_t global_interval =
      options_.global_relabel_interval_factor == 0
          ? 0
          : options_.global_relabel_interval_factor * n;
  auto& fifo = ws_->fifo;
  while (!fifo.empty()) {
    if (global_interval != 0 && relabels_since_global_ >= global_interval) {
      global_relabel();
    }
    const Vertex v = fifo.pop();
    ws_->in_queue[v] = 0;
    discharge(v);
    // A discharge interrupted by the ceiling guard may leave excess; requeue
    // would spin, so assert-quietly: such a vertex has no residual out-arc
    // and can only become pushable again after receiving flow, which
    // re-enqueues it via enqueue_if_active.
  }
  // Post-run seam: with the queue drained every interior vertex returned
  // its excess (to the sink or back past n to the source), so the preflow
  // is a flow again — the property Algorithms 5/6 conserve across probes.
  REPFLOW_CHECK_FLOW(net_, source_, sink_, "push_relabel.post_run");
  return ws_->excess[sink_];
}

Cap PushRelabel::resume() {
  saturate_source_arcs();
  reinitialize_heights();
  return run();
}

MaxflowResult PushRelabel::solve_from_zero() {
  ensure_sizes();
  net_.clear_flow();
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  std::fill_n(ws_->excess.begin(), n, Cap{0});
  std::fill_n(ws_->in_queue.begin(), n, std::uint8_t{0});
  ws_->fifo.clear();
  const FlowStats before = stats_;
  MaxflowResult result;
  result.value = resume();
  result.stats = stats_ - before;  // per-run view; stats_ stays cumulative
  REPFLOW_CHECK_MAXFLOW(net_, source_, sink_, "push_relabel.solve_from_zero");
  return result;
}

void PushRelabel::reset_excess_after_restore(Cap sink_excess) {
  ensure_sizes();
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  std::fill_n(ws_->excess.begin(), n, Cap{0});
  ws_->excess[sink_] = sink_excess;
  std::fill_n(ws_->in_queue.begin(), n, std::uint8_t{0});
  ws_->fifo.clear();
}

}  // namespace repflow::graph
