// Directed flow network with residual-arc representation.
//
// This is the repository's replacement for the LEDA graph container used by
// the paper.  Arcs are stored in forward/reverse pairs: arc 2k is the forward
// arc with its declared capacity, arc 2k+1 is its reverse with capacity 0.
// Pushing f units on arc a adds f to flow[a] and subtracts f from
// flow[a ^ 1], so residual capacities of both directions stay consistent and
// "reversing an edge" (Algorithm 1/2 of the paper) is simply pushing on the
// reverse arc.
//
// Adjacency is a flat CSR layout (contiguous out_arcs_ + first_out_ offset
// arrays) rebuilt lazily after topology edits, so the engines' inner loops
// scan one contiguous range per vertex instead of chasing a vector-of-
// vectors.  reset() clears the network while retaining every buffer's
// capacity: rebuilding a same-footprint network allocates nothing, which is
// what the pooled solvers (core/solver_pool.h) rely on.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace repflow::graph {

using Vertex = std::int32_t;
using ArcId = std::int32_t;
using Cap = std::int64_t;

constexpr Vertex kInvalidVertex = -1;
constexpr ArcId kInvalidArc = -1;

/// Mutable flow network.  Vertices are dense integers [0, num_vertices()).
class FlowNetwork {
 public:
  FlowNetwork() = default;
  explicit FlowNetwork(Vertex initial_vertices) {
    add_vertices(initial_vertices);
  }

  Vertex add_vertex();
  void add_vertices(Vertex count);

  /// Create the forward/reverse arc pair (tail -> head) with capacity `cap`.
  /// Returns the forward arc id (always even); the reverse id is `id + 1`.
  /// Throws std::length_error when another pair would overflow ArcId.
  ArcId add_arc(Vertex tail, Vertex head, Cap cap);

  /// Drop all vertices and arcs, then re-add `vertices` empty vertices.
  /// Every internal buffer keeps its capacity, so re-populating a network
  /// of the same (or smaller) footprint performs no heap allocation.
  void reset(Vertex vertices = 0);

  Vertex num_vertices() const {
    return static_cast<Vertex>(out_degree_.size());
  }
  /// Number of *directed arc slots*, i.e. 2x the number of added edges.
  ArcId num_arcs() const { return static_cast<ArcId>(head_.size()); }
  /// Number of logical (forward) edges.
  ArcId num_edges() const { return num_arcs() / 2; }

  Vertex head(ArcId a) const { return head_[a]; }
  Vertex tail(ArcId a) const { return head_[a ^ 1]; }
  ArcId reverse(ArcId a) const { return a ^ 1; }
  bool is_forward(ArcId a) const { return (a & 1) == 0; }

  Cap capacity(ArcId a) const { return cap_[a]; }
  Cap flow(ArcId a) const { return flow_[a]; }
  Cap residual(ArcId a) const { return cap_[a] - flow_[a]; }

  /// Replace the capacity of one directed arc (used by the retrieval
  /// algorithms to retune sink-edge capacities between max-flow runs).
  void set_capacity(ArcId a, Cap cap) { cap_[a] = cap; }

  /// Push `delta` units along arc `a` (and implicitly -delta on reverse).
  /// Callers must respect residual(a) >= delta; checked in debug builds.
  void push_on(ArcId a, Cap delta);

  /// Overwrite the flow of a forward arc and its reverse pair directly.
  /// Used when restoring a saved flow snapshot.
  void set_pair_flow(ArcId forward_arc, Cap f);

  /// Zero all flows.
  void clear_flow();

  /// Arc ids leaving `v` (both forward and reverse slots), in insertion
  /// order, as one contiguous CSR range.  The span is invalidated by the
  /// next topology edit (add_vertex/add_arc/reset).
  std::span<const ArcId> out_arcs(Vertex v) const {
    if (csr_dirty_) rebuild_csr();
    return {out_arcs_.data() + first_out_[static_cast<std::size_t>(v)],
            out_arcs_.data() + first_out_[static_cast<std::size_t>(v) + 1]};
  }
  std::int32_t out_degree(Vertex v) const { return out_degree_[v]; }

  /// Eagerly rebuild the CSR adjacency after topology edits.
  ///
  /// out_arcs() rebuilds lazily, which mutates the (mutable) cache inside a
  /// const member — fine single-threaded, but a data race the moment a
  /// "read-only" network is shared across threads while still dirty (the
  /// parallel engine's copy_in and any concurrent bench reader would race
  /// on the first touch).  Builders (RetrievalNetwork::rebuild, generators)
  /// call this once at the end of an edit batch so the network they hand
  /// out is genuinely immutable-for-readers.
  void finalize_adjacency() {
    if (csr_dirty_) rebuild_csr();
  }

  /// True while a topology edit has left the CSR cache stale (the next
  /// out_arcs() call would rebuild).  Exposed so tests and the analysis
  /// layer can assert rebuild seams hand out finalized networks.
  bool adjacency_dirty() const { return csr_dirty_; }

  /// Flow snapshots: forward-arc flows only (reverse flows are derived).
  std::vector<Cap> save_flows() const;
  /// Allocation-free variant: overwrite `snapshot` (resized in place).
  void save_flows_into(std::vector<Cap>& snapshot) const;
  void restore_flows(const std::vector<Cap>& snapshot);

  /// Sum of flow on arcs entering `t` (the |f| of Equation 2 in the paper).
  Cap flow_into(Vertex t) const;

  /// Net out-flow of a vertex (0 for all conserved vertices of a flow).
  Cap net_out_flow(Vertex v) const;

  /// Capacity-based estimate of the retained heap footprint.
  std::size_t retained_bytes() const;

  /// Human-readable dump for debugging and golden tests.
  std::string to_string() const;

 private:
  void rebuild_csr() const;

  std::vector<Vertex> head_;              // per arc slot
  std::vector<Cap> cap_;                  // per arc slot
  std::vector<Cap> flow_;                 // per arc slot
  std::vector<std::int32_t> out_degree_;  // per vertex

  // CSR adjacency cache, rebuilt lazily (counting sort over arc ids, which
  // preserves per-vertex insertion order because arc ids are monotone).
  mutable std::vector<ArcId> out_arcs_;        // arc ids grouped by tail
  mutable std::vector<std::int32_t> first_out_;  // vertex -> offset, size V+1
  mutable std::vector<std::int32_t> csr_cursor_; // scatter scratch
  mutable bool csr_dirty_ = true;
};

}  // namespace repflow::graph
