// Capacity-scaling Ford-Fulkerson max-flow.
//
// Classic Gabow-style refinement of the augmenting-path method: only
// augment along paths whose bottleneck is at least Delta, halving Delta
// until 1.  O(E^2 log Cmax).  Included as a further black-box engine for
// the ablation study — it shows how far classical FF refinements close the
// gap to push-relabel on the paper's retrieval networks (they cannot:
// those networks are unit-capacity on the bucket side, so scaling degrades
// to plain FF there, which is itself an instructive data point).
#pragma once

#include <vector>

#include "graph/maxflow.h"

namespace repflow::graph {

class CapacityScalingMaxflow {
 public:
  CapacityScalingMaxflow(FlowNetwork& net, Vertex source, Vertex sink);

  MaxflowResult solve_from_zero();

  const FlowStats& stats() const { return stats_; }

 private:
  /// One augmentation restricted to residual arcs >= delta; returns the
  /// amount pushed (0 if no such path).
  Cap augment_with_threshold(Cap delta);

  FlowNetwork& net_;
  Vertex source_;
  Vertex sink_;
  FlowStats stats_;
  std::vector<std::uint32_t> visited_mark_;
  std::uint32_t mark_epoch_ = 0;
  std::vector<ArcId> parent_arc_;
  std::vector<Vertex> queue_;
};

}  // namespace repflow::graph
