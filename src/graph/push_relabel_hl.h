// Highest-label push-relabel max-flow.
//
// The second classic selection rule alongside FIFO (the paper's choice):
// always discharge an active vertex of maximum height.  O(V^2 sqrt(E))
// worst case and typically the fastest sequential variant in the
// Cherkassky-Goldberg studies; included as an additional engine for the
// ablation benches and as a cross-check of the FIFO implementation.
//
// Supports the same black-box interface as graph::PushRelabel.  (The
// integrated retrieval algorithms keep using the FIFO engine to match the
// paper; this engine exposes solve_from_zero only.)
#pragma once

#include <vector>

#include "graph/maxflow.h"

namespace repflow::graph {

class HighestLabelPushRelabel {
 public:
  HighestLabelPushRelabel(FlowNetwork& net, Vertex source, Vertex sink);

  MaxflowResult solve_from_zero();

  const FlowStats& stats() const { return stats_; }

 private:
  void global_relabel();
  void enqueue(Vertex v);
  void discharge(Vertex v);

  FlowNetwork& net_;
  Vertex source_;
  Vertex sink_;
  FlowStats stats_;

  std::vector<Cap> excess_;
  std::vector<std::int32_t> height_;
  std::vector<std::size_t> arc_cursor_;
  std::vector<std::int32_t> height_count_;
  // Bucketed active lists by height; highest_active_ tracks the top
  // non-empty bucket.
  std::vector<std::vector<Vertex>> active_at_;
  std::vector<bool> in_bucket_;
  std::int32_t highest_active_ = -1;
  std::uint64_t relabels_since_global_ = 0;
};

}  // namespace repflow::graph
