// FIFO push-relabel max-flow engine (Goldberg-Tarjan) with the
// Cherkassky-Goldberg exact-height (global relabeling) and gap heuristics.
//
// This class is designed for *integrated* use by the retrieval algorithms of
// the paper: its height/excess state is exposed so Algorithm 5/6 can conserve
// flows across capacity changes, re-saturate only source arcs with residual
// capacity, and re-run the push/relabel loop from the preserved preflow.
//
// The engine maintains the invariant that after run() returns, every vertex
// except source and sink has zero excess: excess that cannot reach the sink
// is returned to the source by relabeling past n (heights are bounded by
// 2n-1), exactly as required for the paper's flow-conservation scheme.
//
// Working memory lives in a MaxflowWorkspace (graph/workspace.h).  Pass one
// in to share buffers with other engines of the same solver; omit it and the
// engine owns a private workspace.  Either way the buffers are retained
// across runs and across rebind(), so steady-state reruns allocate nothing.
#pragma once

#include <vector>

#include "graph/maxflow.h"
#include "graph/workspace.h"

namespace repflow::graph {

/// How heights are initialized at the start of a (re)run.
enum class HeightInit {
  kZero,           ///< all zero except height[s] = n (paper's Algorithm 4/5)
  kGlobalRelabel,  ///< exact distances to the sink (Cherkassky-Goldberg [19])
};

struct PushRelabelOptions {
  HeightInit height_init = HeightInit::kGlobalRelabel;
  /// Re-run global relabeling after this many relabel operations
  /// (0 disables periodic global relabeling).
  std::uint64_t global_relabel_interval_factor = 1;  // x num_vertices
  bool use_gap_heuristic = true;
};

class PushRelabel {
 public:
  PushRelabel(FlowNetwork& net, Vertex source, Vertex sink,
              PushRelabelOptions options = {},
              MaxflowWorkspace* workspace = nullptr);
  /// Publishes the accumulated FlowStats to the obs registry.
  ~PushRelabel();

  /// Re-target the engine after the network was rebuilt in place (same
  /// FlowNetwork object, possibly different topology).  Clears all engine
  /// state as if freshly constructed, but keeps buffer capacity and the
  /// cumulative stats() total.
  void rebind(Vertex source, Vertex sink);

  // ---- Black-box interface (the [12] baseline uses exactly this) ----

  /// clear_flow() + full preflow init + run().  Returns max-flow value with
  /// this run's operation counts (stats() keeps accumulating across runs).
  MaxflowResult solve_from_zero();

  // ---- Integrated interface (Algorithms 5 and 6) ----

  /// Lines 4-10 of Algorithm 5: for every source out-arc with residual
  /// capacity, saturate it, credit the head's excess, and activate the head.
  /// Existing flows are conserved.  Also re-activates any vertex that still
  /// carries excess from an earlier run (none after a completed run).
  void saturate_source_arcs();

  /// Lines 11-14 of Algorithm 5: reset heights (per `options.height_init`)
  /// and zero the source's excess bookkeeping.
  void reinitialize_heights();

  /// Drain the FIFO queue with push/relabel operations; returns excess[t],
  /// i.e. the value of the current flow.
  Cap run();

  /// Convenience: saturate + reinit heights + run.
  Cap resume();

  // ---- State inspection / manipulation for Algorithm 6 ----

  Cap excess(Vertex v) const { return ws_->excess[v]; }
  std::int32_t height(Vertex v) const { return ws_->height[v]; }

  /// After restoring a flow snapshot into the network, realign the engine's
  /// excess bookkeeping: all conserved vertices zero, sink = `sink_excess`.
  void reset_excess_after_restore(Cap sink_excess);

  const FlowStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// The workspace in use (injected or owned) — for footprint reporting.
  const MaxflowWorkspace& workspace() const { return *ws_; }

 private:
  void validate_endpoints() const;
  void ensure_sizes();
  void enqueue_if_active(Vertex v);
  void discharge(Vertex v);
  void relabel(Vertex v);
  void apply_gap(std::int32_t emptied_height);
  void global_relabel();

  FlowNetwork& net_;
  Vertex source_;
  Vertex sink_;
  PushRelabelOptions options_;
  FlowStats stats_;

  MaxflowWorkspace owned_workspace_;  // used when none is injected
  MaxflowWorkspace* ws_;
  std::uint64_t relabels_since_global_ = 0;
};

}  // namespace repflow::graph
