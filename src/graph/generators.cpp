#include "graph/generators.h"

#include <algorithm>
#include <stdexcept>

namespace repflow::graph {

GeneratedNetwork random_bipartite(std::int32_t left, std::int32_t right,
                                  std::int32_t degree, Cap sink_cap,
                                  Rng& rng) {
  if (left <= 0 || right <= 0 || degree <= 0 || degree > right) {
    throw std::invalid_argument("random_bipartite: bad shape");
  }
  GeneratedNetwork g;
  g.net.add_vertices(left + right + 2);
  g.source = left + right;
  g.sink = left + right + 1;
  for (std::int32_t b = 0; b < left; ++b) {
    g.net.add_arc(g.source, b, 1);
    auto targets = rng.sample_without_replacement(
        static_cast<std::uint32_t>(right), static_cast<std::uint32_t>(degree));
    for (std::uint32_t r : targets) {
      g.net.add_arc(b, left + static_cast<Vertex>(r), 1);
    }
  }
  for (std::int32_t d = 0; d < right; ++d) {
    g.net.add_arc(left + d, g.sink, sink_cap);
  }
  g.net.finalize_adjacency();
  return g;
}

GeneratedNetwork random_general(std::int32_t n, std::int32_t m, Cap max_cap,
                                Rng& rng) {
  if (n < 2 || m < 0 || max_cap < 1) {
    throw std::invalid_argument("random_general: bad shape");
  }
  GeneratedNetwork g;
  g.net.add_vertices(n);
  g.source = 0;
  g.sink = n - 1;
  // Backbone guaranteeing connectivity from s to t.
  for (Vertex v = 0; v + 1 < n; ++v) {
    g.net.add_arc(v, v + 1, 1 + static_cast<Cap>(rng.below(
                                    static_cast<std::uint64_t>(max_cap))));
  }
  for (std::int32_t i = 0; i < m; ++i) {
    const auto u = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    auto v = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v) v = (v + 1) % n;
    g.net.add_arc(u, v, 1 + static_cast<Cap>(rng.below(
                                static_cast<std::uint64_t>(max_cap))));
  }
  g.net.finalize_adjacency();
  return g;
}

GeneratedNetwork layered_network(std::int32_t layers, std::int32_t width,
                                 Cap max_cap, Rng& rng) {
  if (layers < 1 || width < 1 || max_cap < 1) {
    throw std::invalid_argument("layered_network: bad shape");
  }
  GeneratedNetwork g;
  const Vertex body = layers * width;
  g.net.add_vertices(body + 2);
  g.source = body;
  g.sink = body + 1;
  auto vertex_at = [&](std::int32_t layer, std::int32_t i) {
    return static_cast<Vertex>(layer * width + i);
  };
  for (std::int32_t i = 0; i < width; ++i) {
    g.net.add_arc(g.source, vertex_at(0, i),
                  1 + static_cast<Cap>(
                          rng.below(static_cast<std::uint64_t>(max_cap))));
    g.net.add_arc(vertex_at(layers - 1, i), g.sink,
                  1 + static_cast<Cap>(
                          rng.below(static_cast<std::uint64_t>(max_cap))));
  }
  for (std::int32_t layer = 0; layer + 1 < layers; ++layer) {
    for (std::int32_t i = 0; i < width; ++i) {
      // Each vertex links to ~3 vertices of the next layer.
      const std::int32_t fanout = std::min<std::int32_t>(3, width);
      auto targets = rng.sample_without_replacement(
          static_cast<std::uint32_t>(width),
          static_cast<std::uint32_t>(fanout));
      for (std::uint32_t j : targets) {
        g.net.add_arc(vertex_at(layer, i),
                      vertex_at(layer + 1, static_cast<std::int32_t>(j)),
                      1 + static_cast<Cap>(rng.below(
                              static_cast<std::uint64_t>(max_cap))));
      }
    }
  }
  g.net.finalize_adjacency();
  return g;
}

}  // namespace repflow::graph
