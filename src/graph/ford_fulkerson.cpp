#include "graph/ford_fulkerson.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "analysis/check.h"

namespace repflow::graph {

std::string FlowStats::to_string() const {
  std::ostringstream os;
  os << "augment=" << augmentations << " push=" << pushes
     << " relabel=" << relabels << " global=" << global_relabels
     << " gap=" << gap_jumps << " visits=" << dfs_visits;
  return os.str();
}

FordFulkerson::FordFulkerson(FlowNetwork& net, Vertex source, Vertex sink,
                             SearchOrder order, MaxflowWorkspace* workspace)
    : net_(net),
      source_(source),
      sink_(sink),
      order_(order),
      ws_(workspace != nullptr ? workspace : &owned_workspace_) {
  rebind(source, sink);
}

FordFulkerson::~FordFulkerson() { publish_flow_stats(stats_); }

void FordFulkerson::validate_endpoints() const {
  if (source_ < 0 || source_ >= net_.num_vertices() || sink_ < 0 ||
      sink_ >= net_.num_vertices() || source_ == sink_) {
    throw std::invalid_argument("FordFulkerson: bad source/sink");
  }
}

void FordFulkerson::ensure_sizes() {
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  if (ws_->visited_mark.size() < n) ws_->visited_mark.resize(n, 0);
  if (ws_->parent_arc.size() < n) ws_->parent_arc.resize(n, kInvalidArc);
  if (ws_->arc_cursor.size() < n) ws_->arc_cursor.resize(n, 0);
}

void FordFulkerson::rebind(Vertex source, Vertex sink) {
  source_ = source;
  sink_ = sink;
  validate_endpoints();
  ensure_sizes();
}

Cap FordFulkerson::augment_once(Vertex from) {
  if (from == kInvalidVertex) from = source_;
  // The network may have grown since construction (not used by the retrieval
  // algorithms, but keeps the engine honest as a general component).
  ensure_sizes();
  const Cap pushed =
      order_ == SearchOrder::kDfs ? dfs_augment(from) : bfs_augment(from);
  // Preflow (not flow) invariants: Algorithms 1/2 park one unit of excess
  // at every bucket vertex and drain them with per-bucket augmentations.
  if (pushed > 0) {
    REPFLOW_CHECK_PREFLOW(net_, source_, sink_, "ff.post_augment");
  }
  return pushed;
}

Cap FordFulkerson::dfs_augment(Vertex from) {
  const std::uint32_t epoch = ++ws_->mark_epoch;
  auto& visited = ws_->visited_mark;
  auto& cursor = ws_->arc_cursor;
  auto& path = ws_->arc_path;
  auto& stack = ws_->vertex_scratch;
  path.clear();
  // Iterative DFS over residual arcs; cursor[v] indexes v's out-arc list
  // for the current epoch.
  stack.clear();
  stack.push_back(from);
  visited[from] = epoch;
  cursor[from] = 0;
  ++stats_.dfs_visits;
  while (!stack.empty()) {
    const Vertex v = stack.back();
    if (v == sink_) break;
    bool descended = false;
    auto arcs = net_.out_arcs(v);
    for (std::uint32_t& i = cursor[v]; i < arcs.size(); ++i) {
      const ArcId a = arcs[i];
      const Vertex w = net_.head(a);
      if (net_.residual(a) <= 0 || visited[w] == epoch) continue;
      visited[w] = epoch;
      cursor[w] = 0;
      path.push_back(a);
      stack.push_back(w);
      ++stats_.dfs_visits;
      ++i;  // resume after this arc when we pop back to v
      descended = true;
      break;
    }
    if (!descended) {
      stack.pop_back();
      if (!path.empty() && !stack.empty()) path.pop_back();
    }
  }
  if (stack.empty() || stack.back() != sink_) return 0;
  Cap bottleneck = std::numeric_limits<Cap>::max();
  for (ArcId a : path) bottleneck = std::min(bottleneck, net_.residual(a));
  for (ArcId a : path) net_.push_on(a, bottleneck);
  ++stats_.augmentations;
  return bottleneck;
}

Cap FordFulkerson::bfs_augment(Vertex from) {
  const std::uint32_t epoch = ++ws_->mark_epoch;
  auto& visited = ws_->visited_mark;
  auto& parent = ws_->parent_arc;
  auto& queue = ws_->vertex_scratch;
  queue.clear();
  queue.push_back(from);
  visited[from] = epoch;
  parent[from] = kInvalidArc;
  ++stats_.dfs_visits;
  std::size_t qi = 0;
  bool reached = false;
  while (qi < queue.size() && !reached) {
    const Vertex v = queue[qi++];
    for (ArcId a : net_.out_arcs(v)) {
      const Vertex w = net_.head(a);
      if (net_.residual(a) <= 0 || visited[w] == epoch) continue;
      visited[w] = epoch;
      parent[w] = a;
      ++stats_.dfs_visits;
      if (w == sink_) {
        reached = true;
        break;
      }
      queue.push_back(w);
    }
  }
  if (!reached) return 0;
  Cap bottleneck = std::numeric_limits<Cap>::max();
  for (Vertex v = sink_; v != from;) {
    const ArcId a = parent[v];
    bottleneck = std::min(bottleneck, net_.residual(a));
    v = net_.tail(a);
  }
  for (Vertex v = sink_; v != from;) {
    const ArcId a = parent[v];
    net_.push_on(a, bottleneck);
    v = net_.tail(a);
  }
  ++stats_.augmentations;
  return bottleneck;
}

Cap FordFulkerson::run() {
  Cap pushed = 0;
  while (Cap delta = augment_once()) pushed += delta;
  return pushed;
}

MaxflowResult FordFulkerson::solve_from_zero() {
  net_.clear_flow();
  const FlowStats before = stats_;
  MaxflowResult result;
  result.value = run();
  result.stats = stats_ - before;  // per-run view; stats_ stays cumulative
  REPFLOW_CHECK_FLOW(net_, source_, sink_, "ff.solve_from_zero");
  REPFLOW_CHECK_MAXFLOW(net_, source_, sink_, "ff.solve_from_zero");
  return result;
}

}  // namespace repflow::graph
