#include "graph/ford_fulkerson.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace repflow::graph {

std::string FlowStats::to_string() const {
  std::ostringstream os;
  os << "augment=" << augmentations << " push=" << pushes
     << " relabel=" << relabels << " global=" << global_relabels
     << " gap=" << gap_jumps << " visits=" << dfs_visits;
  return os.str();
}

FordFulkerson::FordFulkerson(FlowNetwork& net, Vertex source, Vertex sink,
                             SearchOrder order)
    : net_(net), source_(source), sink_(sink), order_(order) {
  if (source < 0 || source >= net.num_vertices() || sink < 0 ||
      sink >= net.num_vertices() || source == sink) {
    throw std::invalid_argument("FordFulkerson: bad source/sink");
  }
  const auto n = static_cast<std::size_t>(net.num_vertices());
  visited_mark_.assign(n, 0);
  parent_arc_.assign(n, kInvalidArc);
  dfs_arc_index_.assign(n, 0);
}

FordFulkerson::~FordFulkerson() { publish_flow_stats(stats_); }

Cap FordFulkerson::augment_once(Vertex from) {
  if (from == kInvalidVertex) from = source_;
  // The network may have grown since construction (not used by the retrieval
  // algorithms, but keeps the engine honest as a general component).
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  if (visited_mark_.size() < n) {
    visited_mark_.resize(n, 0);
    parent_arc_.resize(n, kInvalidArc);
    dfs_arc_index_.resize(n, 0);
  }
  return order_ == SearchOrder::kDfs ? dfs_augment(from) : bfs_augment(from);
}

Cap FordFulkerson::dfs_augment(Vertex from) {
  ++mark_epoch_;
  dfs_path_.clear();
  // Iterative DFS over residual arcs; dfs_arc_index_[v] is the cursor into
  // v's out-arc list for the current epoch.
  std::vector<Vertex> stack{from};
  visited_mark_[from] = mark_epoch_;
  dfs_arc_index_[from] = 0;
  ++stats_.dfs_visits;
  while (!stack.empty()) {
    const Vertex v = stack.back();
    if (v == sink_) break;
    bool descended = false;
    auto arcs = net_.out_arcs(v);
    for (std::size_t& i = dfs_arc_index_[v]; i < arcs.size(); ++i) {
      const ArcId a = arcs[i];
      const Vertex w = net_.head(a);
      if (net_.residual(a) <= 0 || visited_mark_[w] == mark_epoch_) continue;
      visited_mark_[w] = mark_epoch_;
      dfs_arc_index_[w] = 0;
      dfs_path_.push_back(a);
      stack.push_back(w);
      ++stats_.dfs_visits;
      ++i;  // resume after this arc when we pop back to v
      descended = true;
      break;
    }
    if (!descended) {
      stack.pop_back();
      if (!dfs_path_.empty() && !stack.empty()) dfs_path_.pop_back();
    }
  }
  if (stack.empty() || stack.back() != sink_) return 0;
  Cap bottleneck = std::numeric_limits<Cap>::max();
  for (ArcId a : dfs_path_) bottleneck = std::min(bottleneck, net_.residual(a));
  for (ArcId a : dfs_path_) net_.push_on(a, bottleneck);
  ++stats_.augmentations;
  return bottleneck;
}

Cap FordFulkerson::bfs_augment(Vertex from) {
  ++mark_epoch_;
  queue_.clear();
  queue_.push_back(from);
  visited_mark_[from] = mark_epoch_;
  parent_arc_[from] = kInvalidArc;
  ++stats_.dfs_visits;
  std::size_t qi = 0;
  bool reached = false;
  while (qi < queue_.size() && !reached) {
    const Vertex v = queue_[qi++];
    for (ArcId a : net_.out_arcs(v)) {
      const Vertex w = net_.head(a);
      if (net_.residual(a) <= 0 || visited_mark_[w] == mark_epoch_) continue;
      visited_mark_[w] = mark_epoch_;
      parent_arc_[w] = a;
      ++stats_.dfs_visits;
      if (w == sink_) {
        reached = true;
        break;
      }
      queue_.push_back(w);
    }
  }
  if (!reached) return 0;
  Cap bottleneck = std::numeric_limits<Cap>::max();
  for (Vertex v = sink_; v != from;) {
    const ArcId a = parent_arc_[v];
    bottleneck = std::min(bottleneck, net_.residual(a));
    v = net_.tail(a);
  }
  for (Vertex v = sink_; v != from;) {
    const ArcId a = parent_arc_[v];
    net_.push_on(a, bottleneck);
    v = net_.tail(a);
  }
  ++stats_.augmentations;
  return bottleneck;
}

Cap FordFulkerson::run() {
  Cap pushed = 0;
  while (Cap delta = augment_once()) pushed += delta;
  return pushed;
}

MaxflowResult FordFulkerson::solve_from_zero() {
  net_.clear_flow();
  reset_stats();
  MaxflowResult result;
  result.value = run();
  result.stats = stats_;
  return result;
}

}  // namespace repflow::graph
