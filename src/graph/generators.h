// Random flow-network generators for tests and micro-benchmarks.
#pragma once

#include "graph/flow_network.h"
#include "support/rng.h"

namespace repflow::graph {

/// A generated instance together with its distinguished vertices.
struct GeneratedNetwork {
  FlowNetwork net;
  Vertex source = kInvalidVertex;
  Vertex sink = kInvalidVertex;
};

/// Bipartite retrieval-shaped network: s -> `left` unit arcs, each left
/// vertex connected to `degree` random right vertices (unit arcs), right
/// vertices -> t with capacity `sink_cap`.  This is the exact shape of the
/// paper's retrieval networks.
GeneratedNetwork random_bipartite(std::int32_t left, std::int32_t right,
                                  std::int32_t degree, Cap sink_cap, Rng& rng);

/// General random network: n vertices, m random arcs with capacities in
/// [1, max_cap]; vertex 0 is the source, n-1 the sink.  A Hamiltonian-ish
/// backbone guarantees s-t connectivity.
GeneratedNetwork random_general(std::int32_t n, std::int32_t m, Cap max_cap,
                                Rng& rng);

/// Layered DAG: `layers` layers of `width` vertices, dense random arcs
/// between consecutive layers.  Classic worst-ish case for augmenting-path
/// methods, good case for push-relabel.
GeneratedNetwork layered_network(std::int32_t layers, std::int32_t width,
                                 Cap max_cap, Rng& rng);

}  // namespace repflow::graph
