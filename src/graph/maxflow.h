// Common types shared by the max-flow engines.
#pragma once

#include <cstdint>
#include <string>

#include "graph/flow_network.h"

namespace repflow::graph {

/// Operation counters exposed by every engine; the ablation benches report
/// these alongside wall-clock time.
struct FlowStats {
  std::uint64_t augmentations = 0;   // Ford-Fulkerson / Dinic paths
  std::uint64_t pushes = 0;          // push-relabel pushes
  std::uint64_t relabels = 0;        // push-relabel relabels
  std::uint64_t global_relabels = 0; // exact-height recomputations
  std::uint64_t gap_jumps = 0;       // vertices lifted by the gap heuristic
  std::uint64_t dfs_visits = 0;      // vertices touched by augmenting search

  void reset() { *this = FlowStats{}; }
  FlowStats& operator+=(const FlowStats& o) {
    augmentations += o.augmentations;
    pushes += o.pushes;
    relabels += o.relabels;
    global_relabels += o.global_relabels;
    gap_jumps += o.gap_jumps;
    dfs_visits += o.dfs_visits;
    return *this;
  }
  FlowStats& operator-=(const FlowStats& o) {
    augmentations -= o.augmentations;
    pushes -= o.pushes;
    relabels -= o.relabels;
    global_relabels -= o.global_relabels;
    gap_jumps -= o.gap_jumps;
    dfs_visits -= o.dfs_visits;
    return *this;
  }
  std::string to_string() const;
};

/// Delta between two cumulative snapshots of the same engine (b taken
/// earlier than a): the operation counts of the runs in between.
inline FlowStats operator-(FlowStats a, const FlowStats& b) {
  a -= b;
  return a;
}

/// Result of a full max-flow computation.
struct MaxflowResult {
  Cap value = 0;
  FlowStats stats;
};

/// Fold a FlowStats total into the process-global obs registry (counters
/// `graph.augmentations`, `graph.pushes`, ...).  Engines call this once per
/// lifetime from their destructor so the hot paths stay atomic-free; the
/// per-run FlowStats remains the caller-facing view of the same events.
void publish_flow_stats(const FlowStats& stats);

}  // namespace repflow::graph
