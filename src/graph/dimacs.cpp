#include "graph/dimacs.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace repflow::graph {

DimacsInstance read_dimacs(std::istream& in) {
  DimacsInstance inst;
  std::string line;
  std::int64_t declared_vertices = -1;
  std::int64_t declared_arcs = -1;
  std::int64_t seen_arcs = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    switch (kind) {
      case 'c':
        break;  // comment
      case 'p': {
        std::string problem;
        ls >> problem >> declared_vertices >> declared_arcs;
        if (!ls || problem != "max" || declared_vertices < 2 ||
            declared_arcs < 0) {
          throw std::runtime_error("dimacs: bad problem line: " + line);
        }
        inst.net.add_vertices(static_cast<Vertex>(declared_vertices));
        break;
      }
      case 'n': {
        std::int64_t id = 0;
        char role = 0;
        ls >> id >> role;
        if (!ls || id < 1 || id > declared_vertices) {
          throw std::runtime_error("dimacs: bad node line: " + line);
        }
        if (role == 's') {
          inst.source = static_cast<Vertex>(id - 1);
        } else if (role == 't') {
          inst.sink = static_cast<Vertex>(id - 1);
        } else {
          throw std::runtime_error("dimacs: bad node role: " + line);
        }
        break;
      }
      case 'a': {
        std::int64_t u = 0, v = 0;
        Cap cap = 0;
        ls >> u >> v >> cap;
        if (!ls || u < 1 || v < 1 || u > declared_vertices ||
            v > declared_vertices || cap < 0) {
          throw std::runtime_error("dimacs: bad arc line: " + line);
        }
        inst.net.add_arc(static_cast<Vertex>(u - 1),
                         static_cast<Vertex>(v - 1), cap);
        ++seen_arcs;
        break;
      }
      default:
        throw std::runtime_error("dimacs: unknown line kind: " + line);
    }
  }
  if (declared_vertices < 0) {
    throw std::runtime_error("dimacs: missing problem line");
  }
  if (inst.source == kInvalidVertex || inst.sink == kInvalidVertex) {
    throw std::runtime_error("dimacs: missing source or sink designator");
  }
  if (seen_arcs != declared_arcs) {
    throw std::runtime_error("dimacs: arc count mismatch");
  }
  inst.net.finalize_adjacency();
  return inst;
}

DimacsInstance read_dimacs_string(const std::string& text) {
  std::istringstream in(text);
  return read_dimacs(in);
}

void write_dimacs(std::ostream& out, const FlowNetwork& net, Vertex source,
                  Vertex sink, const std::string& comment) {
  if (!comment.empty()) out << "c " << comment << "\n";
  out << "p max " << net.num_vertices() << " " << net.num_edges() << "\n";
  out << "n " << (source + 1) << " s\n";
  out << "n " << (sink + 1) << " t\n";
  for (ArcId a = 0; a < net.num_arcs(); a += 2) {
    out << "a " << (net.tail(a) + 1) << " " << (net.head(a) + 1) << " "
        << net.capacity(a) << "\n";
  }
}

std::string write_dimacs_string(const FlowNetwork& net, Vertex source,
                                Vertex sink, const std::string& comment) {
  std::ostringstream os;
  write_dimacs(os, net, source, sink, comment);
  return os.str();
}

}  // namespace repflow::graph
