// Registry publication of engine operation counters.
//
// The engines count operations in a plain FlowStats member (one non-atomic
// increment on the hot path — the *view* the solvers return per run) and
// fold the totals into the process-global obs registry exactly once, at
// engine destruction.  That keeps the push/relabel/augment inner loops free
// of atomics while the registry still sees every operation.
#include "graph/maxflow.h"

#include "obs/metrics.h"

namespace repflow::graph {

void publish_flow_stats(const FlowStats& stats) {
  // Handles resolved once per process; thereafter publication is six
  // relaxed fetch_adds and never touches the registry lock.
  struct Handles {
    obs::Counter& augmentations =
        obs::Registry::global().counter("graph.augmentations");
    obs::Counter& pushes = obs::Registry::global().counter("graph.pushes");
    obs::Counter& relabels = obs::Registry::global().counter("graph.relabels");
    obs::Counter& global_relabels =
        obs::Registry::global().counter("graph.global_relabels");
    obs::Counter& gap_jumps =
        obs::Registry::global().counter("graph.gap_jumps");
    obs::Counter& dfs_visits =
        obs::Registry::global().counter("graph.dfs_visits");
    obs::Counter& engine_lifetimes =
        obs::Registry::global().counter("graph.engine_lifetimes");
  };
  static Handles handles;
  handles.augmentations.add(stats.augmentations);
  handles.pushes.add(stats.pushes);
  handles.relabels.add(stats.relabels);
  handles.global_relabels.add(stats.global_relabels);
  handles.gap_jumps.add(stats.gap_jumps);
  handles.dfs_visits.add(stats.dfs_visits);
  handles.engine_lifetimes.add(1);
}

}  // namespace repflow::graph
