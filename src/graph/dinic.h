// Dinic's blocking-flow max-flow algorithm.
//
// Not part of the paper's algorithm suite; included as an additional
// black-box engine for the ablation benchmarks (the paper cites blocking
// flow methods [22], [33] as the classical alternative family).
#pragma once

#include <vector>

#include "graph/maxflow.h"

namespace repflow::graph {

class Dinic {
 public:
  Dinic(FlowNetwork& net, Vertex source, Vertex sink);
  /// Publishes the accumulated FlowStats to the obs registry.
  ~Dinic();

  /// Run from the network's current flow state; returns flow added.
  Cap run();

  /// clear_flow() + run().
  MaxflowResult solve_from_zero();

  const FlowStats& stats() const { return stats_; }

 private:
  bool build_level_graph();
  Cap blocking_dfs(Vertex v, Cap limit);

  FlowNetwork& net_;
  Vertex source_;
  Vertex sink_;
  FlowStats stats_;
  std::vector<std::int32_t> level_;
  std::vector<std::size_t> arc_cursor_;
  std::vector<Vertex> queue_;
};

}  // namespace repflow::graph
