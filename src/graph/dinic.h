// Dinic's blocking-flow max-flow algorithm.
//
// Not part of the paper's algorithm suite; included as an additional
// black-box engine for the ablation benchmarks (the paper cites blocking
// flow methods [22], [33] as the classical alternative family).
//
// Level/cursor/queue scratch lives in a MaxflowWorkspace (graph/workspace.h);
// inject one to share buffers, or omit it for a private workspace.
#pragma once

#include <vector>

#include "graph/maxflow.h"
#include "graph/workspace.h"

namespace repflow::graph {

class Dinic {
 public:
  Dinic(FlowNetwork& net, Vertex source, Vertex sink,
        MaxflowWorkspace* workspace = nullptr);
  /// Publishes the accumulated FlowStats to the obs registry.
  ~Dinic();

  /// Re-target the engine after the network was rebuilt in place.  Keeps
  /// buffer capacity and the cumulative stats() total.
  void rebind(Vertex source, Vertex sink);

  /// Run from the network's current flow state; returns flow added.
  Cap run();

  /// clear_flow() + run().  The result carries this run's operation counts;
  /// stats() keeps accumulating.
  MaxflowResult solve_from_zero();

  const FlowStats& stats() const { return stats_; }

  /// The workspace in use (injected or owned) — for footprint reporting.
  const MaxflowWorkspace& workspace() const { return *ws_; }

 private:
  void validate_endpoints() const;
  bool build_level_graph();
  Cap blocking_dfs(Vertex v, Cap limit);

  FlowNetwork& net_;
  Vertex source_;
  Vertex sink_;
  FlowStats stats_;

  MaxflowWorkspace owned_workspace_;  // used when none is injected
  MaxflowWorkspace* ws_;
};

}  // namespace repflow::graph
