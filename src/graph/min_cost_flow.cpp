#include "graph/min_cost_flow.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace repflow::graph {

namespace {
constexpr Cost kInf = std::numeric_limits<Cost>::infinity();
// Dijkstra over doubles: tolerate tiny negative reduced costs from
// floating-point noise.
constexpr Cost kEps = 1e-9;
}  // namespace

MinCostMaxflow::MinCostMaxflow(FlowNetwork& net, Vertex source, Vertex sink,
                               std::vector<Cost> arc_cost)
    : net_(net), source_(source), sink_(sink), cost_(std::move(arc_cost)) {
  if (source < 0 || source >= net.num_vertices() || sink < 0 ||
      sink >= net.num_vertices() || source == sink) {
    throw std::invalid_argument("MinCostMaxflow: bad source/sink");
  }
  if (cost_.size() != static_cast<std::size_t>(net.num_edges())) {
    throw std::invalid_argument("MinCostMaxflow: cost vector size mismatch");
  }
}

bool MinCostMaxflow::dijkstra() {
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  dist_.assign(n, kInf);
  parent_arc_.assign(n, kInvalidArc);
  using Entry = std::pair<Cost, Vertex>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist_[source_] = 0.0;
  heap.emplace(0.0, source_);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist_[v] + kEps) continue;
    ++stats_.dfs_visits;
    for (ArcId a : net_.out_arcs(v)) {
      if (net_.residual(a) <= 0) continue;
      const Vertex w = net_.head(a);
      const Cost nd = dist_[v] + std::max<Cost>(0.0, reduced_cost(a));
      if (nd + kEps < dist_[w]) {
        dist_[w] = nd;
        parent_arc_[w] = a;
        heap.emplace(nd, w);
      }
    }
  }
  return dist_[sink_] < kInf;
}

MinCostMaxflow::Result MinCostMaxflow::solve_from_zero() {
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  net_.clear_flow();
  stats_.reset();
  Result result;

  // Bellman-Ford to initialize potentials (costs may be any sign on the
  // original arcs; our retrieval use has non-negative costs, but the
  // engine stays general).
  potential_.assign(n, 0.0);
  for (std::size_t round = 0; round + 1 < n; ++round) {
    bool changed = false;
    for (ArcId a = 0; a < net_.num_arcs(); ++a) {
      if (net_.residual(a) <= 0) continue;
      const Cost candidate = potential_[net_.tail(a)] + arc_cost(a);
      if (candidate + kEps < potential_[net_.head(a)]) {
        potential_[net_.head(a)] = candidate;
        changed = true;
      }
    }
    if (!changed) break;
  }

  while (dijkstra()) {
    // Update potentials with the found distances (only for reached nodes).
    for (std::size_t v = 0; v < n; ++v) {
      if (dist_[v] < kInf) potential_[v] += dist_[v];
    }
    // Augment along the shortest path.
    Cap bottleneck = std::numeric_limits<Cap>::max();
    for (Vertex v = sink_; v != source_;) {
      const ArcId a = parent_arc_[v];
      bottleneck = std::min(bottleneck, net_.residual(a));
      v = net_.tail(a);
    }
    for (Vertex v = sink_; v != source_;) {
      const ArcId a = parent_arc_[v];
      net_.push_on(a, bottleneck);
      result.cost += arc_cost(a) * static_cast<Cost>(bottleneck);
      v = net_.tail(a);
    }
    result.flow += bottleneck;
    ++stats_.augmentations;
  }
  result.stats = stats_;
  return result;
}

}  // namespace repflow::graph
