#include "graph/dinic.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace repflow::graph {

Dinic::Dinic(FlowNetwork& net, Vertex source, Vertex sink)
    : net_(net), source_(source), sink_(sink) {
  if (source < 0 || source >= net.num_vertices() || sink < 0 ||
      sink >= net.num_vertices() || source == sink) {
    throw std::invalid_argument("Dinic: bad source/sink");
  }
}

Dinic::~Dinic() { publish_flow_stats(stats_); }

bool Dinic::build_level_graph() {
  level_.assign(static_cast<std::size_t>(net_.num_vertices()), -1);
  queue_.clear();
  queue_.push_back(source_);
  level_[source_] = 0;
  std::size_t qi = 0;
  while (qi < queue_.size()) {
    const Vertex v = queue_[qi++];
    ++stats_.dfs_visits;
    for (ArcId a : net_.out_arcs(v)) {
      const Vertex w = net_.head(a);
      if (net_.residual(a) > 0 && level_[w] < 0) {
        level_[w] = level_[v] + 1;
        queue_.push_back(w);
      }
    }
  }
  return level_[sink_] >= 0;
}

Cap Dinic::blocking_dfs(Vertex v, Cap limit) {
  if (v == sink_) return limit;
  auto arcs = net_.out_arcs(v);
  for (std::size_t& i = arc_cursor_[v]; i < arcs.size(); ++i) {
    const ArcId a = arcs[i];
    const Vertex w = net_.head(a);
    if (net_.residual(a) <= 0 || level_[w] != level_[v] + 1) continue;
    const Cap pushed =
        blocking_dfs(w, std::min(limit, net_.residual(a)));
    if (pushed > 0) {
      net_.push_on(a, pushed);
      return pushed;
    }
  }
  return 0;
}

Cap Dinic::run() {
  Cap total = 0;
  while (build_level_graph()) {
    arc_cursor_.assign(static_cast<std::size_t>(net_.num_vertices()), 0);
    while (Cap pushed =
               blocking_dfs(source_, std::numeric_limits<Cap>::max())) {
      total += pushed;
      ++stats_.augmentations;
    }
  }
  return total;
}

MaxflowResult Dinic::solve_from_zero() {
  net_.clear_flow();
  stats_.reset();
  MaxflowResult result;
  result.value = run();
  result.stats = stats_;
  return result;
}

}  // namespace repflow::graph
