#include "graph/dinic.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "analysis/check.h"

namespace repflow::graph {

Dinic::Dinic(FlowNetwork& net, Vertex source, Vertex sink,
             MaxflowWorkspace* workspace)
    : net_(net),
      source_(source),
      sink_(sink),
      ws_(workspace != nullptr ? workspace : &owned_workspace_) {
  rebind(source, sink);
}

Dinic::~Dinic() { publish_flow_stats(stats_); }

void Dinic::validate_endpoints() const {
  if (source_ < 0 || source_ >= net_.num_vertices() || sink_ < 0 ||
      sink_ >= net_.num_vertices() || source_ == sink_) {
    throw std::invalid_argument("Dinic: bad source/sink");
  }
}

void Dinic::rebind(Vertex source, Vertex sink) {
  source_ = source;
  sink_ = sink;
  validate_endpoints();
}

bool Dinic::build_level_graph() {
  auto& level = ws_->level;
  auto& queue = ws_->vertex_scratch;
  level.assign(static_cast<std::size_t>(net_.num_vertices()), -1);
  queue.clear();
  queue.push_back(source_);
  level[source_] = 0;
  std::size_t qi = 0;
  while (qi < queue.size()) {
    const Vertex v = queue[qi++];
    ++stats_.dfs_visits;
    for (ArcId a : net_.out_arcs(v)) {
      const Vertex w = net_.head(a);
      if (net_.residual(a) > 0 && level[w] < 0) {
        level[w] = level[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return level[sink_] >= 0;
}

Cap Dinic::blocking_dfs(Vertex v, Cap limit) {
  if (v == sink_) return limit;
  auto arcs = net_.out_arcs(v);
  auto& level = ws_->level;
  for (std::uint32_t& i = ws_->arc_cursor[v]; i < arcs.size(); ++i) {
    const ArcId a = arcs[i];
    const Vertex w = net_.head(a);
    if (net_.residual(a) <= 0 || level[w] != level[v] + 1) continue;
    const Cap pushed =
        blocking_dfs(w, std::min(limit, net_.residual(a)));
    if (pushed > 0) {
      net_.push_on(a, pushed);
      return pushed;
    }
  }
  return 0;
}

Cap Dinic::run() {
  Cap total = 0;
  while (build_level_graph()) {
    ws_->arc_cursor.assign(static_cast<std::size_t>(net_.num_vertices()), 0);
    while (Cap pushed =
               blocking_dfs(source_, std::numeric_limits<Cap>::max())) {
      total += pushed;
      ++stats_.augmentations;
    }
  }
  // Path augmentation keeps conservation at every step, so the terminal
  // state is a flow; run() additionally terminates only when no level graph
  // reaches the sink, which the maxflow check certifies at the solve seam.
  REPFLOW_CHECK_FLOW(net_, source_, sink_, "dinic.post_run");
  return total;
}

MaxflowResult Dinic::solve_from_zero() {
  net_.clear_flow();
  const FlowStats before = stats_;
  MaxflowResult result;
  result.value = run();
  result.stats = stats_ - before;  // per-run view; stats_ stays cumulative
  REPFLOW_CHECK_MAXFLOW(net_, source_, sink_, "dinic.solve_from_zero");
  return result;
}

}  // namespace repflow::graph
