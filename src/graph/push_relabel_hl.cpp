#include "graph/push_relabel_hl.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace repflow::graph {

HighestLabelPushRelabel::HighestLabelPushRelabel(FlowNetwork& net,
                                                 Vertex source, Vertex sink)
    : net_(net), source_(source), sink_(sink) {
  if (source < 0 || source >= net.num_vertices() || sink < 0 ||
      sink >= net.num_vertices() || source == sink) {
    throw std::invalid_argument("HighestLabelPushRelabel: bad source/sink");
  }
}

void HighestLabelPushRelabel::enqueue(Vertex v) {
  if (v == source_ || v == sink_ || excess_[v] <= 0 || in_bucket_[v]) return;
  const std::int32_t h = height_[v];
  if (h >= static_cast<std::int32_t>(active_at_.size())) return;
  active_at_[h].push_back(v);
  in_bucket_[v] = true;
  highest_active_ = std::max(highest_active_, h);
}

void HighestLabelPushRelabel::global_relabel() {
  ++stats_.global_relabels;
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  constexpr std::int32_t kUnset = -1;
  std::vector<std::int32_t> h(n, kUnset);
  std::vector<Vertex> queue;
  auto backward_bfs = [&](Vertex root, std::int32_t base) {
    h[root] = base;
    queue.clear();
    queue.push_back(root);
    std::size_t qi = 0;
    while (qi < queue.size()) {
      const Vertex v = queue[qi++];
      for (ArcId a : net_.out_arcs(v)) {
        const Vertex w = net_.head(a);
        if (h[w] != kUnset || net_.residual(net_.reverse(a)) <= 0) continue;
        h[w] = h[v] + 1;
        queue.push_back(w);
      }
    }
  };
  backward_bfs(sink_, 0);
  const auto hs = static_cast<std::int32_t>(n);
  if (h[source_] == kUnset) h[source_] = hs;
  backward_bfs(source_, hs);
  for (std::size_t v = 0; v < n; ++v) {
    if (h[v] == kUnset) h[v] = static_cast<std::int32_t>(2 * n);
  }
  h[source_] = hs;
  std::fill(height_count_.begin(), height_count_.end(), 0);
  for (std::size_t v = 0; v < n; ++v) {
    height_[v] = h[v];
    ++height_count_[h[v]];
  }
  std::fill(arc_cursor_.begin(), arc_cursor_.end(), 0);
  // Rebuild the active buckets from scratch.
  for (auto& bucket : active_at_) bucket.clear();
  std::fill(in_bucket_.begin(), in_bucket_.end(), false);
  highest_active_ = -1;
  for (Vertex v = 0; v < net_.num_vertices(); ++v) enqueue(v);
  relabels_since_global_ = 0;
}

void HighestLabelPushRelabel::discharge(Vertex v) {
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  auto arcs = net_.out_arcs(v);
  while (excess_[v] > 0) {
    if (arc_cursor_[v] >= arcs.size()) {
      // Relabel.
      std::int32_t min_height = std::numeric_limits<std::int32_t>::max();
      for (ArcId a : arcs) {
        if (net_.residual(a) > 0) {
          min_height = std::min(min_height, height_[net_.head(a)]);
        }
      }
      if (min_height == std::numeric_limits<std::int32_t>::max()) {
        min_height = static_cast<std::int32_t>(2 * n) - 1;
      }
      const std::int32_t old_height = height_[v];
      const std::int32_t new_height =
          std::min(min_height + 1, static_cast<std::int32_t>(2 * n));
      arc_cursor_[v] = 0;
      if (new_height <= old_height) continue;  // admissible arc reappeared
      --height_count_[old_height];
      height_[v] = new_height;
      ++height_count_[new_height];
      ++stats_.relabels;
      ++relabels_since_global_;
      // Gap heuristic.
      if (height_count_[old_height] == 0 &&
          old_height < static_cast<std::int32_t>(n)) {
        for (Vertex w = 0; w < net_.num_vertices(); ++w) {
          if (w == source_ || w == sink_) continue;
          if (height_[w] > old_height &&
              height_[w] < static_cast<std::int32_t>(n)) {
            --height_count_[height_[w]];
            height_[w] = static_cast<std::int32_t>(n) + 1;
            ++height_count_[height_[w]];
            arc_cursor_[w] = 0;
            ++stats_.gap_jumps;
          }
        }
      }
      if (height_[v] >= static_cast<std::int32_t>(2 * n)) return;
      continue;
    }
    const ArcId a = arcs[arc_cursor_[v]];
    const Vertex w = net_.head(a);
    if (net_.residual(a) > 0 && height_[v] == height_[w] + 1) {
      const Cap delta = std::min(excess_[v], net_.residual(a));
      net_.push_on(a, delta);
      excess_[v] -= delta;
      excess_[w] += delta;
      ++stats_.pushes;
      enqueue(w);
      if (net_.residual(a) == 0) ++arc_cursor_[v];
    } else {
      ++arc_cursor_[v];
    }
  }
}

MaxflowResult HighestLabelPushRelabel::solve_from_zero() {
  const auto n = static_cast<std::size_t>(net_.num_vertices());
  net_.clear_flow();
  stats_.reset();
  excess_.assign(n, 0);
  height_.assign(n, 0);
  arc_cursor_.assign(n, 0);
  height_count_.assign(2 * n + 2, 0);
  active_at_.assign(2 * n + 2, {});
  in_bucket_.assign(n, false);
  highest_active_ = -1;

  for (ArcId a : net_.out_arcs(source_)) {
    const Cap delta = net_.residual(a);
    if (delta <= 0) continue;
    net_.push_on(a, delta);
    excess_[net_.head(a)] += delta;
  }
  global_relabel();

  const std::uint64_t global_interval = n;
  while (highest_active_ >= 0) {
    auto& bucket = active_at_[highest_active_];
    if (bucket.empty()) {
      --highest_active_;
      continue;
    }
    const Vertex v = bucket.back();
    bucket.pop_back();
    in_bucket_[v] = false;
    if (excess_[v] <= 0) continue;
    if (relabels_since_global_ >= global_interval) {
      // Re-enqueue v (heights are about to change) and rebuild.
      enqueue(v);
      global_relabel();
      continue;
    }
    discharge(v);
    // Discharge may have raised v's height; if it still has excess it was
    // parked at the ceiling, otherwise nothing to do.  Vertices that
    // received flow were enqueued at their (possibly stale) height; stale
    // entries are skipped by the excess check above and re-enqueued at the
    // right height by enqueue() calls after pushes.
    enqueue(v);
  }

  MaxflowResult result;
  result.value = excess_[sink_];
  result.stats = stats_;
  return result;
}

}  // namespace repflow::graph
