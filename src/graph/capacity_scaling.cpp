#include "graph/capacity_scaling.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace repflow::graph {

CapacityScalingMaxflow::CapacityScalingMaxflow(FlowNetwork& net,
                                               Vertex source, Vertex sink)
    : net_(net), source_(source), sink_(sink) {
  if (source < 0 || source >= net.num_vertices() || sink < 0 ||
      sink >= net.num_vertices() || source == sink) {
    throw std::invalid_argument("CapacityScalingMaxflow: bad source/sink");
  }
  const auto n = static_cast<std::size_t>(net.num_vertices());
  visited_mark_.assign(n, 0);
  parent_arc_.assign(n, kInvalidArc);
}

Cap CapacityScalingMaxflow::augment_with_threshold(Cap delta) {
  ++mark_epoch_;
  queue_.clear();
  queue_.push_back(source_);
  visited_mark_[source_] = mark_epoch_;
  std::size_t qi = 0;
  bool reached = false;
  while (qi < queue_.size() && !reached) {
    const Vertex v = queue_[qi++];
    ++stats_.dfs_visits;
    for (ArcId a : net_.out_arcs(v)) {
      const Vertex w = net_.head(a);
      if (net_.residual(a) < delta || visited_mark_[w] == mark_epoch_) {
        continue;
      }
      visited_mark_[w] = mark_epoch_;
      parent_arc_[w] = a;
      if (w == sink_) {
        reached = true;
        break;
      }
      queue_.push_back(w);
    }
  }
  if (!reached) return 0;
  Cap bottleneck = std::numeric_limits<Cap>::max();
  for (Vertex v = sink_; v != source_;) {
    bottleneck = std::min(bottleneck, net_.residual(parent_arc_[v]));
    v = net_.tail(parent_arc_[v]);
  }
  for (Vertex v = sink_; v != source_;) {
    net_.push_on(parent_arc_[v], bottleneck);
    v = net_.tail(parent_arc_[v]);
  }
  ++stats_.augmentations;
  return bottleneck;
}

MaxflowResult CapacityScalingMaxflow::solve_from_zero() {
  net_.clear_flow();
  stats_.reset();
  Cap max_cap = 0;
  for (ArcId a = 0; a < net_.num_arcs(); a += 2) {
    max_cap = std::max(max_cap, net_.capacity(a));
  }
  Cap delta = 1;
  while (delta * 2 <= max_cap) delta *= 2;

  MaxflowResult result;
  while (delta >= 1) {
    while (Cap pushed = augment_with_threshold(delta)) {
      result.value += pushed;
    }
    delta /= 2;
  }
  result.stats = stats_;
  return result;
}

}  // namespace repflow::graph
