// DIMACS max-flow format I/O.
//
// Lets the micro benches and tests exchange instances with standard max-flow
// tools (format: `p max N M`, `n X s|t`, `a U V CAP`, 1-based vertices).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/flow_network.h"

namespace repflow::graph {

struct DimacsInstance {
  FlowNetwork net;
  Vertex source = kInvalidVertex;
  Vertex sink = kInvalidVertex;
};

/// Parse a DIMACS max-flow instance; throws std::runtime_error on malformed
/// input (missing problem line, bad arc endpoints, missing s/t designators).
DimacsInstance read_dimacs(std::istream& in);
DimacsInstance read_dimacs_string(const std::string& text);

/// Serialize the network's arcs and s/t designators in DIMACS format.
void write_dimacs(std::ostream& out, const FlowNetwork& net, Vertex source,
                  Vertex sink, const std::string& comment = {});
std::string write_dimacs_string(const FlowNetwork& net, Vertex source,
                                Vertex sink, const std::string& comment = {});

}  // namespace repflow::graph
