// Fuzz target for the solver catalog: decode the input bytes into a small
// but adversarial RetrievalProblem (skewed costs/delays/loads, arbitrary
// replica placement, possibly empty queries) and cross-check three
// independent solve paths against each other and against the full invariant
// suite:
//
//   * Algorithm 2 (integrated Ford-Fulkerson incrementation),
//   * Algorithm 6 (push-relabel with binary capacity scaling),
//   * the black-box binary-search baseline,
//   * the Hopcroft-Karp b-matching kernel (kIntegratedMatching), and
//   * the ReferenceSolver oracle (candidate enumeration + Edmonds-Karp).
//
// Any disagreement in optimal response time, any invariant violation
// (flow conservation, schedule feasibility, recomputed response time), or
// any unexpected exception aborts — that is the fuzzer's crash signal.
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/schedule_invariants.h"
#include "core/problem.h"
#include "core/reference.h"
#include "core/solve.h"
#include "core/solver.h"
#include "driver.h"

namespace {

using repflow::core::RetrievalProblem;
using repflow::core::SolveResult;
using repflow::core::SolverKind;

/// Sequential byte reader; reads past the end yield zero so every prefix of
/// an interesting input is itself a (smaller) interesting input.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { return pos_ < size_ ? data_[pos_++] : 0; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

RetrievalProblem decode_problem(ByteReader& in) {
  const std::int32_t disks = 1 + in.u8() % 6;
  const std::int64_t buckets = in.u8() % 13;  // 0 = degenerate empty query
  RetrievalProblem p;
  p.system.num_sites = 1;
  p.system.disks_per_site = disks;
  const auto n = static_cast<std::size_t>(disks);
  p.system.model.assign(n, "F");
  p.system.cost_ms.resize(n);
  p.system.delay_ms.resize(n);
  p.system.init_load_ms.resize(n);
  for (std::size_t d = 0; d < n; ++d) {
    // Strictly positive quarter-ms costs; delays/loads may be zero.  Small
    // ranges keep solves fast while still forcing ties, skew, and disks
    // whose delay alone exceeds other disks' full schedules.
    p.system.cost_ms[d] = 0.25 * (1 + in.u8() % 32);
    p.system.delay_ms[d] = 0.25 * (in.u8() % 32);
    p.system.init_load_ms[d] = 0.25 * (in.u8() % 32);
  }
  p.replicas.resize(static_cast<std::size_t>(buckets));
  for (auto& replica_set : p.replicas) {
    const std::uint8_t mask = in.u8();
    for (std::int32_t d = 0; d < disks; ++d) {
      if ((mask >> d) & 1U) replica_set.push_back(d);
    }
    if (replica_set.empty()) replica_set.push_back(in.u8() % disks);
  }
  return p;
}

[[noreturn]] void die(const RetrievalProblem& problem, const char* what,
                      const std::string& detail) {
  std::fprintf(stderr, "fuzz_problem_solve: %s\n%s\n", what, detail.c_str());
  std::fprintf(stderr, "disks=%d buckets=%zu\n", problem.system.total_disks(),
               problem.replicas.size());
  std::abort();
}

void check_result(const RetrievalProblem& problem, const SolveResult& result,
                  const char* solver) {
  const auto report = repflow::analysis::check_solve_result(problem, result);
  if (!report.ok()) die(problem, solver, report.to_string());
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  ByteReader in(data, size);
  const RetrievalProblem problem = decode_problem(in);
  problem.validate();  // decode_problem only builds valid instances

  const SolveResult alg2 =
      repflow::core::solve(problem, SolverKind::kFordFulkersonIncremental);
  const SolveResult alg6 =
      repflow::core::solve(problem, SolverKind::kPushRelabelBinary);
  const SolveResult blackbox =
      repflow::core::solve(problem, SolverKind::kBlackBoxBinary);
  const SolveResult matching =
      repflow::core::solve(problem, SolverKind::kIntegratedMatching);
  const SolveResult oracle = repflow::core::ReferenceSolver(problem).solve();

  check_result(problem, alg2, "alg2_ff_incremental");
  check_result(problem, alg6, "alg6_pr_binary");
  check_result(problem, blackbox, "blackbox_binary");
  check_result(problem, matching, "matching_hk");

  const double expected = oracle.response_time_ms;
  const double tolerance = 1e-9 * (1.0 + std::fabs(expected));
  for (const SolveResult* r : {&alg2, &alg6, &blackbox, &matching}) {
    if (std::fabs(r->response_time_ms - expected) > tolerance) {
      die(problem, "optimal response times disagree",
          "oracle=" + std::to_string(expected) +
              " got=" + std::to_string(r->response_time_ms));
    }
  }
  return 0;
}

namespace repflow::fuzz {

std::vector<std::string> seed_corpus() {
  // Raw decoder bytes (not text).  First seed: 4 disks, 5 buckets, mixed
  // parameters, replica masks touching every disk; second: single disk,
  // empty query; third: all-zero bytes = 1 fast disk, degenerate query.
  return {
      std::string("\x03\x05"
                  "\x08\x00\x00"
                  "\x01\x04\x10"
                  "\x1f\x00\x02"
                  "\x02\x08\x00"
                  "\x0f\x03\x05\x09\x06",
                  19),
      std::string("\x00\x00", 2),
      std::string(8, '\0'),
  };
}

}  // namespace repflow::fuzz
