// Entry-point glue shared by the fuzz harnesses.
//
// Each harness defines the libFuzzer entry point LLVMFuzzerTestOneInput plus
// a seed_corpus() of well-formed inputs.  Under clang the harness links
// -fsanitize=fuzzer and libFuzzer drives the entry point directly.  Every
// other toolchain (the repository's default gcc image has no libFuzzer)
// compiles with REPFLOW_FUZZ_STANDALONE, which provides a main() that
//
//   * replays any corpus files passed as arguments (crash reproduction), and
//   * otherwise runs a deterministic smoke loop: the seed corpus verbatim,
//     random byte mutations of the seeds, and pure random inputs.
//
// The smoke loop is what the CI sanitize job runs (bounded iterations, well
// under its 60s budget); it is a regression net, not a substitute for a real
// libFuzzer campaign.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace repflow::fuzz {
/// Well-formed inputs the standalone driver replays and mutates (and handy
/// starting files for a real libFuzzer corpus directory).
std::vector<std::string> seed_corpus();
}  // namespace repflow::fuzz

#if defined(REPFLOW_FUZZ_STANDALONE)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/rng.h"

namespace repflow::fuzz {
namespace {

void run_one(const std::string& bytes) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
}

int replay_files(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open corpus file %s\n", argv[i]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::fprintf(stderr, "replay %s (%zu bytes)\n", argv[i],
                 buffer.str().size());
    run_one(buffer.str());
  }
  return 0;
}

int smoke_loop() {
  // Deterministic: same binary, same inputs, same verdict.  Override the
  // effort with REPFLOW_FUZZ_ITERS when hunting locally.
  std::uint64_t iterations = 1000;
  if (const char* env = std::getenv("REPFLOW_FUZZ_ITERS")) {
    iterations = static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }
  Rng rng(0xF022EDBEEFULL);
  const std::vector<std::string> seeds = seed_corpus();
  for (const std::string& seed : seeds) run_one(seed);
  for (std::uint64_t i = 0; i < iterations; ++i) {
    std::string input;
    if (!seeds.empty() && rng.chance(0.7)) {
      // Mutate a seed: byte flips, truncation, or duplication.
      input = seeds[static_cast<std::size_t>(rng.below(seeds.size()))];
      const std::uint64_t edits = 1 + rng.below(8);
      for (std::uint64_t e = 0; e < edits && !input.empty(); ++e) {
        const auto at = static_cast<std::size_t>(rng.below(input.size()));
        switch (rng.below(4)) {
          case 0:
            input[at] = static_cast<char>(rng.below(256));
            break;
          case 1:
            input.erase(at, 1 + rng.below(4));
            break;
          case 2:
            input.insert(at, 1, static_cast<char>(rng.below(256)));
            break;
          default:
            input += input.substr(at, 16);
            break;
        }
      }
    } else {
      input.resize(rng.below(513));
      for (auto& c : input) c = static_cast<char>(rng.below(256));
    }
    run_one(input);
  }
  std::fprintf(stderr, "smoke loop done: %llu inputs, no crash\n",
               static_cast<unsigned long long>(iterations + seeds.size()));
  return 0;
}

}  // namespace
}  // namespace repflow::fuzz

int main(int argc, char** argv) {
  if (argc > 1) return repflow::fuzz::replay_files(argc, argv);
  return repflow::fuzz::smoke_loop();
}

#endif  // REPFLOW_FUZZ_STANDALONE
