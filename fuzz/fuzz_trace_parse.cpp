// Fuzz target for the workload trace parser (core/trace.h).
//
// Properties checked on every input:
//   * read_trace_string either returns a Trace or throws std::runtime_error —
//     any other escape (crash, UB, different exception type) is a bug;
//   * a successfully parsed trace re-serializes to text the parser accepts,
//     and serialize(parse(serialize(t))) is byte-identical to serialize(t)
//     (the serialized form is a fixed point);
//   * every query converts through Trace::problem() into either a valid
//     RetrievalProblem or a clean std::invalid_argument from validate().
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/trace.h"
#include "driver.h"

namespace {

[[noreturn]] void die(const char* what, const std::string& detail) {
  std::fprintf(stderr, "fuzz_trace_parse: %s\n%s\n", what, detail.c_str());
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Large inputs only slow the parser down without new code paths; huge
  // numeric literals (giant disk counts) are still reachable at this size.
  constexpr std::size_t kMaxInput = 1 << 16;
  if (size > kMaxInput) size = kMaxInput;
  const std::string text(reinterpret_cast<const char*>(data), size);

  repflow::core::Trace trace;
  try {
    trace = repflow::core::read_trace_string(text);
  } catch (const std::runtime_error&) {
    return 0;  // documented rejection of malformed input
  } catch (const std::bad_alloc&) {
    // A syntactically valid "system" line may declare more disks than this
    // process can allocate; treat resource exhaustion as rejection.
    return 0;
  }

  const std::string first = repflow::core::write_trace_string(trace);
  repflow::core::Trace reparsed;
  try {
    reparsed = repflow::core::read_trace_string(first);
  } catch (const std::exception& e) {
    die("serializer emitted text the parser rejects", e.what() +
                                                          ("\n--- emitted ---\n" + first));
  }
  const std::string second = repflow::core::write_trace_string(reparsed);
  if (second != first) {
    die("serialization is not a fixed point",
        "--- first ---\n" + first + "--- second ---\n" + second);
  }

  // Convert a bounded number of queries into problem instances; the parser
  // is allowed to accept traces whose semantics validate() rejects (e.g. a
  // non-positive transfer cost), but nothing else may escape.
  const std::size_t limit = reparsed.queries.size() < 8
                                ? reparsed.queries.size()
                                : static_cast<std::size_t>(8);
  for (std::size_t i = 0; i < limit; ++i) {
    try {
      (void)reparsed.problem(i);
    } catch (const std::invalid_argument&) {
      // validate() rejected the instance — acceptable.
    }
  }
  return 0;
}

namespace repflow::fuzz {

std::vector<std::string> seed_corpus() {
  return {
      // Canonical two-disk trace with two queries.
      "trace v1\n"
      "system 1 2\n"
      "disk 0 A 1.5 0.25 0\n"
      "disk 1 B 2 0 1\n"
      "query 0 3\n"
      "bucket 10 0\n"
      "bucket 11 0 1\n"
      "bucket 12 1\n"
      "query 1 1\n"
      "bucket 7 1\n",
      // Degenerate but legal: a query with zero buckets.
      "trace v1\n"
      "system 1 1\n"
      "disk 0 ? 1 0 0\n"
      "query 0 0\n",
      // Multi-site system, no queries.
      "trace v1\n"
      "system 2 2\n"
      "disk 0 A 1 0 0\n"
      "disk 1 A 1 0 0\n"
      "disk 2 B 3 5 2\n"
      "disk 3 B 3 5 2\n",
  };
}

}  // namespace repflow::fuzz
